//! Write tracing.
//!
//! Experiments in the reproduction need to *show* which victim words an
//! overflow touched (e.g. "`ssn[1]` overwrote `n`", §3.7.2). The address
//! space therefore records every write in a [`WriteTrace`] that scenarios
//! can query and reset.

use std::fmt;

use crate::VirtAddr;

/// A single recorded write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRecord {
    /// First byte written.
    pub addr: VirtAddr,
    /// Number of bytes written.
    pub len: u32,
    /// Monotonic sequence number (0 = first write since the last clear).
    pub seq: u64,
}

impl WriteRecord {
    /// Returns `true` if the write overlaps `[addr, addr + len)`.
    pub fn overlaps(&self, addr: VirtAddr, len: u32) -> bool {
        let a0 = u64::from(self.addr.value());
        let a1 = a0 + u64::from(self.len);
        let b0 = u64::from(addr.value());
        let b1 = b0 + u64::from(len);
        a0 < b1 && b0 < a1
    }
}

impl fmt::Display for WriteRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} write {} bytes at {}", self.seq, self.len, self.addr)
    }
}

/// An append-only log of writes to an
/// [`AddressSpace`](crate::AddressSpace).
///
/// The trace is bounded: once `capacity` records are stored, older records
/// are discarded (attack scenarios are short; the bound exists so the DoS
/// experiments with billions of iterations do not exhaust host memory).
#[derive(Debug, Clone)]
pub struct WriteTrace {
    records: std::collections::VecDeque<WriteRecord>,
    capacity: usize,
    next_seq: u64,
    enabled: bool,
}

impl WriteTrace {
    /// Default bound on retained records.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a trace retaining at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        WriteTrace {
            records: std::collections::VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            next_seq: 0,
            enabled: true,
        }
    }

    /// Creates a trace with [`WriteTrace::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Records a write. No-op while the trace is disabled.
    pub fn record(&mut self, addr: VirtAddr, len: u32) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(WriteRecord { addr, len, seq: self.next_seq });
        self.next_seq += 1;
    }

    /// Total writes observed since the last [`clear`](Self::clear),
    /// including records that were evicted by the capacity bound.
    pub fn total_writes(&self) -> u64 {
        self.next_seq
    }

    /// Iterates over the retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &WriteRecord> {
        self.records.iter()
    }

    /// Records that overlap the `len` bytes at `addr` — "who wrote to the
    /// victim?".
    pub fn writes_to(&self, addr: VirtAddr, len: u32) -> Vec<WriteRecord> {
        self.iter().filter(|r| r.overlaps(addr, len)).copied().collect()
    }

    /// Discards all records and resets the sequence counter.
    pub fn clear(&mut self) {
        self.records.clear();
        self.next_seq = 0;
    }

    /// Enables or disables recording (e.g. during bulk scenario setup).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Returns `true` if recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

impl Default for WriteTrace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = WriteTrace::new();
        t.record(VirtAddr::new(0x10), 4);
        t.record(VirtAddr::new(0x14), 4);
        let seqs: Vec<u64> = t.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
        assert_eq!(t.total_writes(), 2);
    }

    #[test]
    fn overlap_detection() {
        let r = WriteRecord { addr: VirtAddr::new(0x10), len: 4, seq: 0 };
        assert!(r.overlaps(VirtAddr::new(0x12), 1));
        assert!(r.overlaps(VirtAddr::new(0x0e), 4));
        assert!(!r.overlaps(VirtAddr::new(0x14), 4));
        assert!(!r.overlaps(VirtAddr::new(0x0c), 4));
    }

    #[test]
    fn writes_to_filters_victims() {
        let mut t = WriteTrace::new();
        t.record(VirtAddr::new(0x10), 4); // misses victim
        t.record(VirtAddr::new(0x20), 4); // hits victim
        let hits = t.writes_to(VirtAddr::new(0x20), 4);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].seq, 1);
    }

    #[test]
    fn capacity_bound_evicts_oldest_but_counts_all() {
        let mut t = WriteTrace::with_capacity(2);
        for i in 0..5u32 {
            t.record(VirtAddr::new(i * 4), 4);
        }
        assert_eq!(t.iter().count(), 2);
        assert_eq!(t.total_writes(), 5);
        assert_eq!(t.iter().next().unwrap().seq, 3);
    }

    #[test]
    fn disable_suppresses_recording() {
        let mut t = WriteTrace::new();
        t.set_enabled(false);
        assert!(!t.is_enabled());
        t.record(VirtAddr::new(0), 4);
        assert_eq!(t.total_writes(), 0);
        t.set_enabled(true);
        t.record(VirtAddr::new(0), 4);
        assert_eq!(t.total_writes(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut t = WriteTrace::new();
        t.record(VirtAddr::new(0), 1);
        t.clear();
        assert_eq!(t.total_writes(), 0);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn display() {
        let r = WriteRecord { addr: VirtAddr::new(0x10), len: 4, seq: 7 };
        assert_eq!(r.to_string(), "#7 write 4 bytes at 0x00000010");
    }
}
