//! Simulated byte-addressable process address space.
//!
//! This crate provides the lowest substrate of the reproduction of
//! *"A New Class of Buffer Overflow Attacks"* (Kundu & Bertino, ICDCS 2011):
//! a deterministic, inspectable model of the memory image of a C++ process
//! on the platform the paper evaluated (Ubuntu 10.04, gcc 4.4.3, ILP32).
//!
//! The address space is organized into ELF-style [`Segment`]s
//! (text, rodata, data, bss, heap, stack) with read/write/execute
//! [`Perms`]. Scalar accessors use little-endian encoding, matching x86.
//! Every write is recorded in a [`WriteTrace`] so experiments can show
//! exactly which victim words an overflow touched.
//!
//! Nothing in this crate performs bounds checking *between objects*: that is
//! precisely the property the paper exploits. The only checks enforced here
//! are the ones real hardware enforces — segment bounds (a "segfault") and
//! page permissions.
//!
//! # Examples
//!
//! ```
//! use pnew_memory::{AddressSpace, SegmentKind};
//!
//! # fn main() -> Result<(), pnew_memory::MemoryError> {
//! let mut space = AddressSpace::ilp32();
//! let bss = space.segment(SegmentKind::Bss).base();
//! space.write_u32(bss, 0xdead_beef)?;
//! assert_eq!(space.read_u32(bss)?, 0xdead_beef);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
pub mod dump;
mod error;
mod perms;
mod segment;
mod space;
mod trace;

pub use addr::{DataModel, VirtAddr};
pub use error::MemoryError;
pub use perms::Perms;
pub use segment::{Segment, SegmentKind};
pub use space::{AddressSpace, AddressSpaceBuilder};
pub use trace::{WriteRecord, WriteTrace};

/// Crate-wide result alias for memory operations.
pub type Result<T, E = MemoryError> = std::result::Result<T, E>;
