//! Error type for memory operations.

use std::error::Error;
use std::fmt;

use crate::{Perms, SegmentKind, VirtAddr};

/// An error raised by the simulated memory subsystem.
///
/// These correspond to the faults real hardware/OS would raise — the
/// simulated equivalents of a segmentation fault. Note that overflowing
/// *within* a mapped, writable segment is **not** an error: that silence is
/// exactly the vulnerability the reproduced paper studies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// The access touched an address not covered by any segment.
    Unmapped {
        /// First faulting address.
        addr: VirtAddr,
        /// Length of the attempted access in bytes.
        len: u64,
    },
    /// The access crossed from one segment past its end.
    OutOfSegment {
        /// Segment in which the access started.
        segment: SegmentKind,
        /// Start of the attempted access.
        addr: VirtAddr,
        /// Length of the attempted access in bytes.
        len: u64,
    },
    /// The segment does not grant the required permission.
    PermissionDenied {
        /// Segment that was accessed.
        segment: SegmentKind,
        /// Faulting address.
        addr: VirtAddr,
        /// Permission that was required.
        required: Perms,
        /// Permissions the segment grants.
        granted: Perms,
    },
    /// Address arithmetic left the 32-bit address space.
    AddressOverflow {
        /// Base address of the computation.
        base: VirtAddr,
        /// Offset that was applied.
        offset: u64,
    },
    /// A scalar access required alignment the address does not satisfy.
    Misaligned {
        /// Faulting address.
        addr: VirtAddr,
        /// Required alignment in bytes.
        align: u32,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::Unmapped { addr, len } => {
                write!(f, "unmapped access of {len} bytes at {addr}")
            }
            MemoryError::OutOfSegment { segment, addr, len } => write!(
                f,
                "access of {len} bytes at {addr} runs past the end of the {segment} segment"
            ),
            MemoryError::PermissionDenied { segment, addr, required, granted } => write!(
                f,
                "{segment} segment at {addr} grants {granted} but the access requires {required}"
            ),
            MemoryError::AddressOverflow { base, offset } => {
                write!(f, "address computation {base} + {offset} overflows the address space")
            }
            MemoryError::Misaligned { addr, align } => {
                write!(f, "address {addr} is not {align}-byte aligned")
            }
        }
    }
}

impl Error for MemoryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let e = MemoryError::Unmapped { addr: VirtAddr::new(0x10), len: 4 };
        assert_eq!(e.to_string(), "unmapped access of 4 bytes at 0x00000010");

        let e = MemoryError::OutOfSegment {
            segment: SegmentKind::Stack,
            addr: VirtAddr::new(0x20),
            len: 8,
        };
        assert!(e.to_string().contains("stack segment"));

        let e = MemoryError::PermissionDenied {
            segment: SegmentKind::Text,
            addr: VirtAddr::new(0x30),
            required: Perms::WRITE,
            granted: Perms::READ_EXEC,
        };
        assert!(e.to_string().contains("requires -w-"));

        let e = MemoryError::AddressOverflow { base: VirtAddr::new(1), offset: 2 };
        assert!(e.to_string().contains("overflows"));

        let e = MemoryError::Misaligned { addr: VirtAddr::new(3), align: 4 };
        assert!(e.to_string().contains("4-byte aligned"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<MemoryError>();
    }
}
