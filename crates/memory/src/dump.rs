//! Memory forensics: hexdumps and snapshot diffing.
//!
//! The experiments don't just assert that an overflow happened — they
//! *show* it. [`hexdump`] renders a region in the classic
//! offset/hex/ASCII format, and a [`Snapshot`] captures a region so that
//! after an attack the exact changed bytes can be listed ([`Snapshot::diff`]),
//! grouped into contiguous runs.

use std::fmt;
use std::fmt::Write as _;

use crate::{AddressSpace, Result, VirtAddr};

/// Renders `len` bytes at `addr` as a classic 16-byte-per-row hexdump.
///
/// # Errors
///
/// Fails if any byte of the range is unreadable.
///
/// # Examples
///
/// ```
/// use pnew_memory::{dump::hexdump, AddressSpace, SegmentKind};
///
/// # fn main() -> Result<(), pnew_memory::MemoryError> {
/// let mut space = AddressSpace::ilp32();
/// let p = space.segment(SegmentKind::Data).base();
/// space.write_bytes(p, b"placement new")?;
/// let text = hexdump(&space, p, 16)?;
/// assert!(text.contains("70 6c 61 63"));       // "plac"
/// assert!(text.contains("|placement new"));
/// # Ok(())
/// # }
/// ```
pub fn hexdump(space: &AddressSpace, addr: VirtAddr, len: u32) -> Result<String> {
    let bytes = space.read_vec(addr, len)?;
    let mut out = String::new();
    for (row, chunk) in bytes.chunks(16).enumerate() {
        let base = addr + (row as u32) * 16;
        let _ = write!(out, "{base}  ");
        for i in 0..16 {
            match chunk.get(i) {
                Some(b) => {
                    let _ = write!(out, "{b:02x} ");
                }
                None => out.push_str("   "),
            }
            if i == 7 {
                out.push(' ');
            }
        }
        out.push_str(" |");
        for b in chunk {
            out.push(if (0x20..0x7f).contains(b) { *b as char } else { '.' });
        }
        out.push_str("|\n");
    }
    Ok(out)
}

/// One contiguous run of changed bytes between a snapshot and the live
/// memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRange {
    /// First changed byte.
    pub addr: VirtAddr,
    /// Bytes at capture time.
    pub before: Vec<u8>,
    /// Bytes now.
    pub after: Vec<u8>,
}

impl DiffRange {
    /// Length of the changed run.
    pub fn len(&self) -> u32 {
        self.before.len() as u32
    }

    /// `true` if the run is empty (never produced by `diff`).
    pub fn is_empty(&self) -> bool {
        self.before.is_empty()
    }
}

impl fmt::Display for DiffRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} bytes): {} -> {}",
            self.addr,
            self.len(),
            hex(&self.before),
            hex(&self.after)
        )
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect::<Vec<_>>().join(" ")
}

/// A captured copy of a memory range, for before/after comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    base: VirtAddr,
    bytes: Vec<u8>,
}

impl Snapshot {
    /// Captures `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if the range is unreadable.
    pub fn capture(space: &AddressSpace, addr: VirtAddr, len: u32) -> Result<Snapshot> {
        Ok(Snapshot { base: addr, bytes: space.read_vec(addr, len)? })
    }

    /// Base address of the captured range.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Length of the captured range.
    pub fn len(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Compares the snapshot against the live memory and returns the
    /// changed runs, in address order.
    ///
    /// # Errors
    ///
    /// Fails if the range is no longer readable.
    pub fn diff(&self, space: &AddressSpace) -> Result<Vec<DiffRange>> {
        let now = space.read_vec(self.base, self.len())?;
        let mut runs = Vec::new();
        let mut i = 0usize;
        while i < now.len() {
            if now[i] == self.bytes[i] {
                i += 1;
                continue;
            }
            let start = i;
            while i < now.len() && now[i] != self.bytes[i] {
                i += 1;
            }
            runs.push(DiffRange {
                addr: self.base + start as u32,
                before: self.bytes[start..i].to_vec(),
                after: now[start..i].to_vec(),
            });
        }
        Ok(runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SegmentKind;

    fn space_with(bytes: &[u8]) -> (AddressSpace, VirtAddr) {
        let mut s = AddressSpace::ilp32();
        let p = s.segment(SegmentKind::Data).base();
        s.write_bytes(p, bytes).unwrap();
        (s, p)
    }

    #[test]
    fn hexdump_rows_and_ascii() {
        let (s, p) = space_with(b"Hello, placement new world!!\x01\x02");
        let text = hexdump(&s, p, 32).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(&p.to_string()));
        assert!(lines[0].contains("48 65 6c 6c 6f")); // Hello
        assert!(lines[0].contains("|Hello, placement|"));
        assert!(lines[1].contains('.')); // non-printables dotted
    }

    #[test]
    fn hexdump_partial_final_row_is_padded() {
        let (s, p) = space_with(b"abc");
        let text = hexdump(&s, p, 3).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("|abc|"));
    }

    #[test]
    fn snapshot_diff_empty_when_unchanged() {
        let (s, p) = space_with(&[1, 2, 3, 4]);
        let snap = Snapshot::capture(&s, p, 4).unwrap();
        assert_eq!(snap.len(), 4);
        assert!(!snap.is_empty());
        assert_eq!(snap.base(), p);
        assert!(snap.diff(&s).unwrap().is_empty());
    }

    #[test]
    fn snapshot_diff_groups_contiguous_runs() {
        let (mut s, p) = space_with(&[0u8; 32]);
        let snap = Snapshot::capture(&s, p, 32).unwrap();
        // Two separate changed runs.
        s.write_bytes(p + 4, &[0xaa, 0xbb]).unwrap();
        s.write_u32(p + 16, 0xdead_beef).unwrap();
        let runs = snap.diff(&s).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].addr, p + 4);
        assert_eq!(runs[0].after, vec![0xaa, 0xbb]);
        assert_eq!(runs[0].before, vec![0, 0]);
        assert_eq!(runs[1].addr, p + 16);
        assert_eq!(runs[1].len(), 4);
        assert!(!runs[1].is_empty());
    }

    #[test]
    fn diff_display_shows_hex() {
        let (mut s, p) = space_with(&[0u8; 8]);
        let snap = Snapshot::capture(&s, p, 8).unwrap();
        s.write_u8(p, 0x41).unwrap();
        let runs = snap.diff(&s).unwrap();
        let text = runs[0].to_string();
        assert!(text.contains("00 -> 41"), "{text}");
    }

    #[test]
    fn writing_same_value_is_not_a_diff() {
        let (mut s, p) = space_with(&[7u8; 8]);
        let snap = Snapshot::capture(&s, p, 8).unwrap();
        s.write_u8(p + 2, 7).unwrap(); // same byte
        assert!(snap.diff(&s).unwrap().is_empty());
    }
}
