//! Segment permissions.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// Page-level permissions of a [`Segment`](crate::Segment), in the spirit of
/// `r`/`w`/`x` bits in `/proc/<pid>/maps`.
///
/// The executable bit is what the paper's §3.6.2 code-injection discussion
/// turns on: with an executable stack the injected shellcode runs, with an
/// NX stack the return into the stack faults.
///
/// # Examples
///
/// ```
/// use pnew_memory::Perms;
///
/// let rw = Perms::READ | Perms::WRITE;
/// assert!(rw.allows(Perms::READ));
/// assert!(!rw.allows(Perms::EXEC));
/// assert_eq!(rw.to_string(), "rw-");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms(u8);

impl Perms {
    /// No access.
    pub const NONE: Perms = Perms(0);
    /// Read access.
    pub const READ: Perms = Perms(1);
    /// Write access.
    pub const WRITE: Perms = Perms(2);
    /// Execute access.
    pub const EXEC: Perms = Perms(4);
    /// Read + write (data, bss, heap, NX stack).
    pub const READ_WRITE: Perms = Perms(1 | 2);
    /// Read + execute (text).
    pub const READ_EXEC: Perms = Perms(1 | 4);
    /// Read + write + execute (a pre-NX executable stack).
    pub const ALL: Perms = Perms(1 | 2 | 4);

    /// Returns `true` if every permission in `required` is granted.
    pub const fn allows(self, required: Perms) -> bool {
        self.0 & required.0 == required.0
    }

    /// Returns `true` if the write bit is granted.
    pub const fn writable(self) -> bool {
        self.allows(Perms::WRITE)
    }

    /// Returns `true` if the execute bit is granted.
    pub const fn executable(self) -> bool {
        self.allows(Perms::EXEC)
    }
}

impl BitOr for Perms {
    type Output = Perms;

    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitOrAssign for Perms {
    fn bitor_assign(&mut self, rhs: Perms) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.allows(Perms::READ) { 'r' } else { '-' },
            if self.allows(Perms::WRITE) { 'w' } else { '-' },
            if self.allows(Perms::EXEC) { 'x' } else { '-' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_and_query() {
        let p = Perms::READ | Perms::EXEC;
        assert_eq!(p, Perms::READ_EXEC);
        assert!(p.allows(Perms::READ));
        assert!(p.allows(Perms::EXEC));
        assert!(p.executable());
        assert!(!p.writable());
        assert!(!p.allows(Perms::READ_WRITE));
    }

    #[test]
    fn or_assign() {
        let mut p = Perms::READ;
        p |= Perms::WRITE;
        assert_eq!(p, Perms::READ_WRITE);
    }

    #[test]
    fn display_matches_proc_maps_style() {
        assert_eq!(Perms::NONE.to_string(), "---");
        assert_eq!(Perms::ALL.to_string(), "rwx");
        assert_eq!(Perms::READ_EXEC.to_string(), "r-x");
        assert_eq!(Perms::default().to_string(), "---");
    }

    #[test]
    fn none_allows_only_none() {
        assert!(Perms::NONE.allows(Perms::NONE));
        assert!(!Perms::NONE.allows(Perms::READ));
    }
}
