//! The simulated process address space.

use std::fmt;

use crate::{DataModel, MemoryError, Perms, Result, Segment, SegmentKind, VirtAddr, WriteTrace};

/// Backing storage for one segment.
#[derive(Debug, Clone)]
struct Mapping {
    segment: Segment,
    bytes: Vec<u8>,
}

/// The memory image of a simulated C++ process.
///
/// Segments follow the classic 32-bit Linux ELF layout the paper references:
/// text at the bottom, rodata/data/bss above it, heap growing up from the
/// bss, and the stack just below `0xc000_0000` growing down.
///
/// Accessors enforce exactly what hardware enforces — mapping and
/// permissions — and nothing more. Adjacent objects inside a writable
/// segment have **no** protection from each other; that is the property
/// placement-new attacks exploit.
///
/// # Examples
///
/// ```
/// use pnew_memory::{AddressSpace, SegmentKind};
///
/// # fn main() -> Result<(), pnew_memory::MemoryError> {
/// let mut space = AddressSpace::ilp32();
/// let p = space.segment(SegmentKind::Data).base();
/// space.write_f64(p, 3.9)?;          // Student::gpa
/// space.write_i32(p + 8, 2008)?;     // Student::year
/// assert_eq!(space.read_f64(p)?, 3.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    mappings: Vec<Mapping>,
    model: DataModel,
    trace: WriteTrace,
    /// When true, scalar accessors require natural alignment (off by
    /// default: x86 tolerates unaligned scalar access, and the paper's
    /// platform is x86).
    strict_alignment: bool,
}

impl AddressSpace {
    /// Creates the standard ILP32 process image used throughout the
    /// reproduction (the paper's platform).
    pub fn ilp32() -> Self {
        AddressSpaceBuilder::new(DataModel::Ilp32).build()
    }

    /// Creates an LP64-model image for the layout-ablation experiment.
    /// Addresses remain 32-bit; only type sizes/alignments change.
    pub fn lp64() -> Self {
        AddressSpaceBuilder::new(DataModel::Lp64).build()
    }

    /// The data model (type sizes) of this image.
    pub fn data_model(&self) -> DataModel {
        self.model
    }

    /// Returns the segment of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if the image was built without that segment (the provided
    /// builders always map all six).
    pub fn segment(&self, kind: SegmentKind) -> &Segment {
        &self
            .mappings
            .iter()
            .find(|m| m.segment.kind() == kind)
            .unwrap_or_else(|| panic!("segment {kind} is not mapped"))
            .segment
    }

    /// Changes the permissions of a segment (the simulated `mprotect`),
    /// e.g. making the stack executable for the code-injection experiment.
    pub fn set_segment_perms(&mut self, kind: SegmentKind, perms: Perms) {
        let m = self
            .mappings
            .iter_mut()
            .find(|m| m.segment.kind() == kind)
            .unwrap_or_else(|| panic!("segment {kind} is not mapped"));
        m.segment.set_perms(perms);
    }

    /// Returns the segment containing `addr`, if any.
    pub fn segment_containing(&self, addr: VirtAddr) -> Option<&Segment> {
        self.mappings.iter().map(|m| &m.segment).find(|s| s.contains(addr))
    }

    /// The write trace.
    pub fn trace(&self) -> &WriteTrace {
        &self.trace
    }

    /// Mutable access to the write trace (to clear or disable it).
    pub fn trace_mut(&mut self) -> &mut WriteTrace {
        &mut self.trace
    }

    /// Enables strict natural-alignment checking on scalar accessors.
    ///
    /// Off by default: the paper's platform (x86) tolerates unaligned
    /// access. The alignment-ablation experiment turns it on to model
    /// alignment-faulting architectures.
    pub fn set_strict_alignment(&mut self, strict: bool) {
        self.strict_alignment = strict;
    }

    fn mapping_for(&self, addr: VirtAddr, len: u64, required: Perms) -> Result<&Mapping> {
        let m = self
            .mappings
            .iter()
            .find(|m| m.segment.contains(addr))
            .ok_or(MemoryError::Unmapped { addr, len })?;
        if !m.segment.contains_range(addr, len) {
            return Err(MemoryError::OutOfSegment { segment: m.segment.kind(), addr, len });
        }
        if !m.segment.perms().allows(required) {
            return Err(MemoryError::PermissionDenied {
                segment: m.segment.kind(),
                addr,
                required,
                granted: m.segment.perms(),
            });
        }
        Ok(m)
    }

    fn mapping_for_mut(
        &mut self,
        addr: VirtAddr,
        len: u64,
        required: Perms,
    ) -> Result<&mut Mapping> {
        // Validate with the shared lookup first to keep the error paths in
        // one place, then re-find mutably.
        self.mapping_for(addr, len, required)?;
        Ok(self.mappings.iter_mut().find(|m| m.segment.contains(addr)).expect("validated above"))
    }

    fn check_alignment(&self, addr: VirtAddr, align: u32) -> Result<()> {
        if self.strict_alignment && !addr.is_aligned(align) {
            return Err(MemoryError::Misaligned { addr, align });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if the range is unmapped, crosses a segment end, or the
    /// segment is not readable.
    pub fn read_bytes(&self, addr: VirtAddr, buf: &mut [u8]) -> Result<()> {
        let m = self.mapping_for(addr, buf.len() as u64, Perms::READ)?;
        let off = addr.offset_from(m.segment.base()) as usize;
        buf.copy_from_slice(&m.bytes[off..off + buf.len()]);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    ///
    /// # Errors
    ///
    /// Same conditions as [`read_bytes`](Self::read_bytes).
    pub fn read_vec(&self, addr: VirtAddr, len: u32) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len as usize];
        self.read_bytes(addr, &mut buf)?;
        Ok(buf)
    }

    /// Writes `bytes` starting at `addr` and records the write in the trace.
    ///
    /// # Errors
    ///
    /// Fails if the range is unmapped, crosses a segment end, or the
    /// segment is not writable. **Succeeds silently** when the write merely
    /// overflows one object into the next — the vulnerability under study.
    pub fn write_bytes(&mut self, addr: VirtAddr, bytes: &[u8]) -> Result<()> {
        let m = self.mapping_for_mut(addr, bytes.len() as u64, Perms::WRITE)?;
        let off = addr.offset_from(m.segment.base()) as usize;
        m.bytes[off..off + bytes.len()].copy_from_slice(bytes);
        self.trace.record(addr, bytes.len() as u32);
        Ok(())
    }

    /// Fills `len` bytes starting at `addr` with `value` (the simulated
    /// `memset`, used by the §5.1 sanitization defense).
    ///
    /// # Errors
    ///
    /// Same conditions as [`write_bytes`](Self::write_bytes).
    pub fn fill(&mut self, addr: VirtAddr, value: u8, len: u32) -> Result<()> {
        let m = self.mapping_for_mut(addr, u64::from(len), Perms::WRITE)?;
        let off = addr.offset_from(m.segment.base()) as usize;
        m.bytes[off..off + len as usize].fill(value);
        self.trace.record(addr, len);
        Ok(())
    }

    /// Copies `len` bytes from `src` to `dst` (the simulated `memcpy`).
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as a read of `src` plus a write of
    /// `dst`.
    pub fn copy(&mut self, dst: VirtAddr, src: VirtAddr, len: u32) -> Result<()> {
        let data = self.read_vec(src, len)?;
        self.write_bytes(dst, &data)
    }

    /// Checks that an instruction fetch at `addr` would be permitted and
    /// returns the containing segment kind.
    ///
    /// # Errors
    ///
    /// Fails if `addr` is unmapped or the segment lacks execute permission
    /// (the NX fault of §3.6.2).
    pub fn check_exec(&self, addr: VirtAddr) -> Result<SegmentKind> {
        let m = self.mapping_for(addr, 1, Perms::EXEC)?;
        Ok(m.segment.kind())
    }
}

/// Scalar accessors. All encodings are little-endian (x86).
macro_rules! scalar_access {
    ($read:ident, $write:ident, $ty:ty, $len:expr, $doc:expr) => {
        #[doc = concat!("Reads a little-endian `", stringify!($ty), "` (", $doc, ").")]
        ///
        /// # Errors
        ///
        /// Fails on unmapped/unreadable ranges, and on misalignment when
        /// strict alignment is enabled.
        pub fn $read(&self, addr: VirtAddr) -> Result<$ty> {
            self.check_alignment(addr, $len)?;
            let mut buf = [0u8; $len];
            self.read_bytes(addr, &mut buf)?;
            Ok(<$ty>::from_le_bytes(buf))
        }

        #[doc = concat!("Writes a little-endian `", stringify!($ty), "` (", $doc, ").")]
        ///
        /// # Errors
        ///
        /// Fails on unmapped/unwritable ranges, and on misalignment when
        /// strict alignment is enabled.
        pub fn $write(&mut self, addr: VirtAddr, value: $ty) -> Result<()> {
            self.check_alignment(addr, $len)?;
            self.write_bytes(addr, &value.to_le_bytes())
        }
    };
}

impl AddressSpace {
    scalar_access!(read_u8, write_u8, u8, 1, "a C `char`");
    scalar_access!(read_u16, write_u16, u16, 2, "a C `short`");
    scalar_access!(read_u32, write_u32, u32, 4, "a C `unsigned int`");
    scalar_access!(read_u64, write_u64, u64, 8, "a C `unsigned long long`");
    scalar_access!(read_i32, write_i32, i32, 4, "a C `int`");
    scalar_access!(read_i64, write_i64, i64, 8, "a C `long long`");
    scalar_access!(read_f64, write_f64, f64, 8, "a C `double`");

    /// Reads a pointer-sized value according to the data model.
    ///
    /// # Errors
    ///
    /// Same conditions as the sized scalar reads.
    pub fn read_ptr(&self, addr: VirtAddr) -> Result<VirtAddr> {
        match self.model.pointer_size() {
            4 => Ok(VirtAddr::new(self.read_u32(addr)?)),
            _ => {
                // LP64 pointers occupy 8 bytes but the simulated address
                // space is 32-bit wide; the upper half must be zero.
                let wide = self.read_u64(addr)?;
                Ok(VirtAddr::new(wide as u32))
            }
        }
    }

    /// Writes a pointer-sized value according to the data model.
    ///
    /// # Errors
    ///
    /// Same conditions as the sized scalar writes.
    pub fn write_ptr(&mut self, addr: VirtAddr, value: VirtAddr) -> Result<()> {
        match self.model.pointer_size() {
            4 => self.write_u32(addr, value.value()),
            _ => self.write_u64(addr, u64::from(value.value())),
        }
    }

    /// Reads a NUL-terminated C string of at most `max` bytes.
    ///
    /// # Errors
    ///
    /// Fails if any byte of the scan is unreadable.
    pub fn read_cstr(&self, addr: VirtAddr, max: u32) -> Result<String> {
        let mut out = Vec::new();
        for i in 0..max {
            let b = self.read_u8(addr.checked_add(u64::from(i))?)?;
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "address space ({})", self.model)?;
        for m in &self.mappings {
            writeln!(f, "  {}", m.segment)?;
        }
        Ok(())
    }
}

/// Builder for non-default process images.
///
/// # Examples
///
/// ```
/// use pnew_memory::{AddressSpaceBuilder, DataModel, SegmentKind};
///
/// let space = AddressSpaceBuilder::new(DataModel::Ilp32)
///     .segment_size(SegmentKind::Heap, 4096)
///     .build();
/// assert_eq!(space.segment(SegmentKind::Heap).size(), 4096);
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpaceBuilder {
    model: DataModel,
    sizes: [(SegmentKind, u32); 6],
    trace_capacity: usize,
    aslr_seed: Option<u64>,
}

impl AddressSpaceBuilder {
    /// Default segment sizes (bytes) of the standard image.
    const DEFAULT_SIZES: [(SegmentKind, u32); 6] = [
        (SegmentKind::Text, 0x1_0000),
        (SegmentKind::Rodata, 0x1_0000),
        (SegmentKind::Data, 0x1_0000),
        (SegmentKind::Bss, 0x1_0000),
        (SegmentKind::Heap, 0x10_0000),
        (SegmentKind::Stack, 0x10_0000),
    ];

    /// Base address of the text segment in the standard 32-bit Linux image.
    const TEXT_BASE: u32 = 0x0804_8000;

    /// Top of the stack in the standard 32-bit Linux image.
    const STACK_TOP: u32 = 0xc000_0000;

    /// Starts a builder for the given data model.
    pub fn new(model: DataModel) -> Self {
        AddressSpaceBuilder {
            model,
            sizes: Self::DEFAULT_SIZES,
            trace_capacity: WriteTrace::DEFAULT_CAPACITY,
            aslr_seed: None,
        }
    }

    /// Enables address-space layout randomization: segment bases and the
    /// stack top are slid by seeded page-granular amounts (up to ~8 MiB),
    /// as a mainline Linux loader would. The paper's platform predates
    /// default ASLR; this switch powers the E24 ablation.
    pub fn aslr(mut self, seed: u64) -> Self {
        self.aslr_seed = Some(seed);
        self
    }

    /// Overrides the size of one segment.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not 16-byte aligned.
    pub fn segment_size(mut self, kind: SegmentKind, size: u32) -> Self {
        assert!(
            size > 0 && size.is_multiple_of(16),
            "segment size must be a positive multiple of 16"
        );
        for slot in &mut self.sizes {
            if slot.0 == kind {
                slot.1 = size;
            }
        }
        self
    }

    /// Overrides the bound on retained write-trace records.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Builds the address space.
    pub fn build(&self) -> AddressSpace {
        // Page-granular slides from a small deterministic generator
        // (splitmix64), so the memory crate stays dependency-free.
        let mut rng_state = self.aslr_seed.unwrap_or(0);
        let mut slide_pages = |max_pages: u64| -> u32 {
            if self.aslr_seed.is_none() {
                return 0;
            }
            rng_state = rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = rng_state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            ((z % max_pages) as u32) * 0x1000
        };

        let mut mappings = Vec::with_capacity(6);
        let mut cursor = VirtAddr::new(Self::TEXT_BASE) + slide_pages(0x800);
        for (kind, size) in self.sizes {
            let (base, sz) = if kind == SegmentKind::Stack {
                (VirtAddr::new(Self::STACK_TOP - size) - slide_pages(0x800), size)
            } else {
                let b = cursor + slide_pages(0x100);
                cursor = (b + size).align_up(0x1000);
                (b, size)
            };
            // Leave an unmapped guard gap between heap and stack implicitly:
            // the heap region ends far below the stack base.
            let segment = Segment::new(kind, base, sz, kind.default_perms());
            mappings.push(Mapping { segment, bytes: vec![0u8; sz as usize] });
        }
        AddressSpace {
            mappings,
            model: self.model,
            trace: WriteTrace::with_capacity(self.trace_capacity),
            strict_alignment: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_image_has_all_segments_in_order() {
        let space = AddressSpace::ilp32();
        let mut prev_end = VirtAddr::NULL;
        for kind in SegmentKind::ALL {
            let s = space.segment(kind);
            assert!(s.base() >= prev_end, "{kind} overlaps previous segment");
            prev_end = s.end();
        }
        assert_eq!(space.segment(SegmentKind::Text).base().value(), 0x0804_8000);
        assert_eq!(space.segment(SegmentKind::Stack).end().value(), 0xc000_0000);
    }

    #[test]
    fn scalar_round_trips() {
        let mut s = AddressSpace::ilp32();
        let p = s.segment(SegmentKind::Data).base();
        s.write_u8(p, 0xab).unwrap();
        assert_eq!(s.read_u8(p).unwrap(), 0xab);
        s.write_u16(p, 0xbeef).unwrap();
        assert_eq!(s.read_u16(p).unwrap(), 0xbeef);
        s.write_u32(p, 0xdead_beef).unwrap();
        assert_eq!(s.read_u32(p).unwrap(), 0xdead_beef);
        s.write_u64(p, 0x0123_4567_89ab_cdef).unwrap();
        assert_eq!(s.read_u64(p).unwrap(), 0x0123_4567_89ab_cdef);
        s.write_i32(p, -2009).unwrap();
        assert_eq!(s.read_i32(p).unwrap(), -2009);
        s.write_i64(p, i64::MIN + 1).unwrap();
        assert_eq!(s.read_i64(p).unwrap(), i64::MIN + 1);
        s.write_f64(p, 4.0).unwrap();
        assert_eq!(s.read_f64(p).unwrap(), 4.0);
    }

    #[test]
    fn little_endian_encoding() {
        let mut s = AddressSpace::ilp32();
        let p = s.segment(SegmentKind::Data).base();
        s.write_u32(p, 0x0403_0201).unwrap();
        assert_eq!(s.read_vec(p, 4).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn pointer_width_follows_data_model() {
        let mut s32 = AddressSpace::ilp32();
        let p = s32.segment(SegmentKind::Data).base();
        s32.write_ptr(p, VirtAddr::new(0x1234)).unwrap();
        assert_eq!(s32.read_u32(p).unwrap(), 0x1234);

        let mut s64 = AddressSpace::lp64();
        let p = s64.segment(SegmentKind::Data).base();
        s64.write_ptr(p, VirtAddr::new(0x1234)).unwrap();
        assert_eq!(s64.read_u64(p).unwrap(), 0x1234);
        assert_eq!(s64.read_ptr(p).unwrap(), VirtAddr::new(0x1234));
    }

    #[test]
    fn unmapped_access_faults() {
        let s = AddressSpace::ilp32();
        let gap = VirtAddr::new(0x5000_0000); // between heap and stack
        assert!(matches!(s.read_u32(gap), Err(MemoryError::Unmapped { .. })));
    }

    #[test]
    fn cross_segment_access_faults() {
        let mut s = AddressSpace::ilp32();
        let data = s.segment(SegmentKind::Data);
        let last = data.end() - 2;
        assert!(matches!(
            s.write_u32(last, 1),
            Err(MemoryError::OutOfSegment { segment: SegmentKind::Data, .. })
        ));
    }

    #[test]
    fn rodata_rejects_writes_text_rejects_reads_ok() {
        let mut s = AddressSpace::ilp32();
        let ro = s.segment(SegmentKind::Rodata).base();
        assert!(matches!(s.write_u8(ro, 1), Err(MemoryError::PermissionDenied { .. })));
        // text is readable
        let tx = s.segment(SegmentKind::Text).base();
        assert!(s.read_u8(tx).is_ok());
    }

    #[test]
    fn nx_stack_rejects_exec_until_remapped() {
        let mut s = AddressSpace::ilp32();
        let sp = s.segment(SegmentKind::Stack).base();
        assert!(matches!(s.check_exec(sp), Err(MemoryError::PermissionDenied { .. })));
        s.set_segment_perms(SegmentKind::Stack, Perms::ALL);
        assert_eq!(s.check_exec(sp).unwrap(), SegmentKind::Stack);
    }

    #[test]
    fn adjacent_overflow_is_silent() {
        // The core property of the paper: a write that overflows one
        // object into its neighbour within a segment succeeds.
        let mut s = AddressSpace::ilp32();
        let bss = s.segment(SegmentKind::Bss).base();
        // "object" A at bss..bss+16, "object" B at bss+16..bss+32
        s.write_bytes(bss, &[0xaa; 24]).unwrap(); // 8 bytes into B
        assert_eq!(s.read_u64(bss + 16).unwrap(), 0xaaaa_aaaa_aaaa_aaaa);
    }

    #[test]
    fn fill_and_copy() {
        let mut s = AddressSpace::ilp32();
        let p = s.segment(SegmentKind::Heap).base();
        s.fill(p, 0x41, 16).unwrap();
        s.copy(p + 16, p, 16).unwrap();
        assert_eq!(s.read_vec(p + 16, 16).unwrap(), vec![0x41; 16]);
    }

    #[test]
    fn cstr_reads_to_nul_or_max() {
        let mut s = AddressSpace::ilp32();
        let p = s.segment(SegmentKind::Heap).base();
        s.write_bytes(p, b"abc\0def").unwrap();
        assert_eq!(s.read_cstr(p, 16).unwrap(), "abc");
        assert_eq!(s.read_cstr(p, 2).unwrap(), "ab");
    }

    #[test]
    fn trace_records_writes() {
        let mut s = AddressSpace::ilp32();
        let p = s.segment(SegmentKind::Bss).base();
        s.trace_mut().clear();
        s.write_u32(p, 1).unwrap();
        s.write_u32(p + 8, 2).unwrap();
        assert_eq!(s.trace().total_writes(), 2);
        assert_eq!(s.trace().writes_to(p + 8, 4).len(), 1);
    }

    #[test]
    fn strict_alignment_faults_unaligned() {
        let mut s = AddressSpace::ilp32();
        let p = s.segment(SegmentKind::Data).base();
        assert!(s.read_u32(p + 1).is_ok());
        s.set_strict_alignment(true);
        assert!(matches!(s.read_u32(p + 1), Err(MemoryError::Misaligned { align: 4, .. })));
        assert!(matches!(s.write_f64(p + 4, 1.0), Err(MemoryError::Misaligned { align: 8, .. })));
    }

    #[test]
    fn aslr_slides_are_seeded_and_page_aligned() {
        let a = AddressSpaceBuilder::new(DataModel::Ilp32).aslr(1).build();
        let b = AddressSpaceBuilder::new(DataModel::Ilp32).aslr(1).build();
        let c = AddressSpaceBuilder::new(DataModel::Ilp32).aslr(2).build();
        let plain = AddressSpace::ilp32();
        for kind in SegmentKind::ALL {
            assert_eq!(a.segment(kind).base(), b.segment(kind).base(), "{kind}");
            assert!(a.segment(kind).base().is_aligned(0x1000) || kind == SegmentKind::Stack);
        }
        // Different seeds move at least some segments; ASLR differs from
        // the fixed layout.
        assert_ne!(a.segment(SegmentKind::Text).base(), plain.segment(SegmentKind::Text).base());
        assert_ne!(
            (a.segment(SegmentKind::Stack).base(), a.segment(SegmentKind::Heap).base()),
            (c.segment(SegmentKind::Stack).base(), c.segment(SegmentKind::Heap).base())
        );
        // Segments still do not overlap and stay ordered below the stack.
        let mut prev_end = VirtAddr::NULL;
        for kind in SegmentKind::ALL {
            let s = a.segment(kind);
            assert!(s.base() >= prev_end, "{kind} overlaps");
            prev_end = s.end();
        }
    }

    #[test]
    fn builder_overrides_sizes() {
        let s = AddressSpaceBuilder::new(DataModel::Ilp32)
            .segment_size(SegmentKind::Heap, 4096)
            .segment_size(SegmentKind::Stack, 8192)
            .build();
        assert_eq!(s.segment(SegmentKind::Heap).size(), 4096);
        assert_eq!(s.segment(SegmentKind::Stack).size(), 8192);
        assert_eq!(s.segment(SegmentKind::Stack).end().value(), 0xc000_0000);
    }

    #[test]
    fn segment_containing_finds_the_right_segment() {
        let s = AddressSpace::ilp32();
        let heap = s.segment(SegmentKind::Heap);
        assert_eq!(
            s.segment_containing(heap.base() + 10).map(|x| x.kind()),
            Some(SegmentKind::Heap)
        );
        assert_eq!(s.segment_containing(VirtAddr::new(0x100)), None);
    }

    #[test]
    fn display_lists_segments() {
        let s = AddressSpace::ilp32();
        let text = s.to_string();
        assert!(text.contains("stack"));
        assert!(text.contains("ILP32"));
    }
}
