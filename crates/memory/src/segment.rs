//! ELF-style memory segments.

use std::fmt;

use crate::{Perms, VirtAddr};

/// The kind of a [`Segment`], following the ELF process image the paper's
/// §3.5 references (text, then data/bss, heap growing up, stack on top).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SegmentKind {
    /// Executable code (function entry points live here).
    Text,
    /// Read-only data; vtables are materialized here.
    Rodata,
    /// Initialized globals.
    Data,
    /// Uninitialized globals — where Listing 11 allocates `stud1`/`stud2`.
    Bss,
    /// The dynamic heap, managed by the runtime allocator.
    Heap,
    /// The call stack, growing downward.
    Stack,
}

impl SegmentKind {
    /// All kinds in ascending address order of the standard process image.
    pub const ALL: [SegmentKind; 6] = [
        SegmentKind::Text,
        SegmentKind::Rodata,
        SegmentKind::Data,
        SegmentKind::Bss,
        SegmentKind::Heap,
        SegmentKind::Stack,
    ];

    /// The default permissions a loader would grant the segment.
    ///
    /// The stack defaults to NX (`rw-`); the code-injection experiment
    /// remaps it `rwx` to model a pre-NX system.
    pub const fn default_perms(self) -> Perms {
        match self {
            SegmentKind::Text => Perms::READ_EXEC,
            SegmentKind::Rodata => Perms::READ,
            SegmentKind::Data | SegmentKind::Bss | SegmentKind::Heap | SegmentKind::Stack => {
                Perms::READ_WRITE
            }
        }
    }
}

impl fmt::Display for SegmentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SegmentKind::Text => "text",
            SegmentKind::Rodata => "rodata",
            SegmentKind::Data => "data",
            SegmentKind::Bss => "bss",
            SegmentKind::Heap => "heap",
            SegmentKind::Stack => "stack",
        };
        f.write_str(name)
    }
}

/// A contiguous, mapped region of the simulated address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    kind: SegmentKind,
    base: VirtAddr,
    size: u32,
    perms: Perms,
}

impl Segment {
    /// Creates a segment covering `[base, base + size)`.
    ///
    /// # Panics
    ///
    /// Panics if the range leaves the 32-bit address space or is empty.
    pub fn new(kind: SegmentKind, base: VirtAddr, size: u32, perms: Perms) -> Self {
        assert!(size > 0, "segment {kind} must not be empty");
        assert!(
            base.value().checked_add(size - 1).is_some(),
            "segment {kind} leaves the address space"
        );
        Segment { kind, base, size, perms }
    }

    /// The segment kind.
    pub fn kind(&self) -> SegmentKind {
        self.kind
    }

    /// Lowest address of the segment.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// One past the highest address of the segment.
    pub fn end(&self) -> VirtAddr {
        VirtAddr::new(self.base.value() + self.size)
    }

    /// The permissions currently granted.
    pub fn perms(&self) -> Perms {
        self.perms
    }

    /// Replaces the permissions (the simulated `mprotect`).
    pub fn set_perms(&mut self, perms: Perms) {
        self.perms = perms;
    }

    /// Returns `true` if `addr` lies inside the segment.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Returns `true` if the whole `len`-byte range starting at `addr` lies
    /// inside the segment.
    pub fn contains_range(&self, addr: VirtAddr, len: u64) -> bool {
        if !self.contains(addr) {
            return len == 0 && addr == self.end();
        }
        let available = u64::from(self.end().value()) - u64::from(addr.value());
        len <= available
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{} {} {}", self.base, self.end(), self.perms, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> Segment {
        Segment::new(SegmentKind::Heap, VirtAddr::new(0x1000), 0x100, Perms::READ_WRITE)
    }

    #[test]
    fn range_queries() {
        let s = seg();
        assert!(s.contains(VirtAddr::new(0x1000)));
        assert!(s.contains(VirtAddr::new(0x10ff)));
        assert!(!s.contains(VirtAddr::new(0x1100)));
        assert!(s.contains_range(VirtAddr::new(0x1000), 0x100));
        assert!(!s.contains_range(VirtAddr::new(0x1001), 0x100));
        assert!(s.contains_range(VirtAddr::new(0x10ff), 1));
    }

    #[test]
    fn empty_range_at_end_is_contained() {
        let s = seg();
        assert!(s.contains_range(s.end(), 0));
        assert!(!s.contains_range(s.end(), 1));
    }

    #[test]
    fn display_reads_like_proc_maps() {
        assert_eq!(seg().to_string(), "0x00001000-0x00001100 rw- heap");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_segment_rejected() {
        Segment::new(SegmentKind::Data, VirtAddr::new(0), 0, Perms::NONE);
    }

    #[test]
    #[should_panic(expected = "leaves the address space")]
    fn oversized_segment_rejected() {
        Segment::new(SegmentKind::Data, VirtAddr::new(u32::MAX), 2, Perms::NONE);
    }

    #[test]
    fn default_perms_model_nx() {
        assert!(!SegmentKind::Stack.default_perms().executable());
        assert!(SegmentKind::Text.default_perms().executable());
        assert!(!SegmentKind::Rodata.default_perms().writable());
    }

    #[test]
    fn set_perms_remaps() {
        let mut s = seg();
        s.set_perms(Perms::ALL);
        assert!(s.perms().executable());
    }
}
