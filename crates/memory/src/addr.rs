//! Virtual addresses and data models.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use crate::MemoryError;

/// A virtual address in the simulated process image.
///
/// Addresses are 32-bit, matching the ILP32 environment the paper evaluated
/// on (Ubuntu 10.04 / gcc 4.4.3 on x86). The wrapper makes address
/// arithmetic explicit and overflow-checked: the paper's attacks rely on
/// *valid* adjacent addresses, not on integer wraparound, so wraparound is
/// reported as an error rather than silently wrapping.
///
/// # Examples
///
/// ```
/// use pnew_memory::VirtAddr;
///
/// let a = VirtAddr::new(0x1000);
/// assert_eq!((a + 8).value(), 0x1008);
/// assert_eq!(a.align_up(16), VirtAddr::new(0x1000));
/// assert_eq!(VirtAddr::new(0x1001).align_up(16), VirtAddr::new(0x1010));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u32);

impl VirtAddr {
    /// The null address. Placement new at null is undefined in the paper's
    /// model ("the address must be a non-null one"); the runtime rejects it.
    pub const NULL: VirtAddr = VirtAddr(0);

    /// Creates an address from its raw 32-bit value.
    pub const fn new(value: u32) -> Self {
        VirtAddr(value)
    }

    /// Returns the raw 32-bit value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Returns `true` if this is the null address.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Checked addition of a byte offset.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::AddressOverflow`] if the result does not fit in
    /// the 32-bit address space.
    pub fn checked_add(self, offset: u64) -> Result<Self, MemoryError> {
        let wide = u64::from(self.0) + offset;
        u32::try_from(wide)
            .map(VirtAddr)
            .map_err(|_| MemoryError::AddressOverflow { base: self, offset })
    }

    /// Checked subtraction of a byte offset.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::AddressOverflow`] if the result would be
    /// negative.
    pub fn checked_sub(self, offset: u64) -> Result<Self, MemoryError> {
        u32::try_from(offset)
            .ok()
            .and_then(|off| self.0.checked_sub(off))
            .map(VirtAddr)
            .ok_or(MemoryError::AddressOverflow { base: self, offset })
    }

    /// Rounds the address up to the next multiple of `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two, or if rounding would leave
    /// the 32-bit address space (in release builds too — layout code must
    /// not silently wrap). Use [`VirtAddr::checked_align_up`] where the
    /// address is attacker-influenced.
    pub fn align_up(self, align: u32) -> Self {
        self.checked_align_up(align).expect("address overflow in align_up")
    }

    /// Checked variant of [`VirtAddr::align_up`].
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::AddressOverflow`] if rounding up would leave
    /// the 32-bit address space.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn checked_align_up(self, align: u32) -> Result<Self, MemoryError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.0
            .checked_add(align - 1)
            .map(|v| VirtAddr(v & !(align - 1)))
            .ok_or(MemoryError::AddressOverflow { base: self, offset: u64::from(align - 1) })
    }

    /// Rounds the address down to the previous multiple of `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn align_down(self, align: u32) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        VirtAddr(self.0 & !(align - 1))
    }

    /// Returns `true` if the address is a multiple of `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn is_aligned(self, align: u32) -> bool {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.0 & (align - 1) == 0
    }

    /// Byte distance from `other` to `self` (`self - other`).
    ///
    /// # Panics
    ///
    /// Panics if `other > self`; callers compare addresses first.
    pub fn offset_from(self, other: VirtAddr) -> u64 {
        assert!(other <= self, "offset_from: {other} is above {self}",);
        u64::from(self.0 - other.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:08x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u32> for VirtAddr {
    fn from(value: u32) -> Self {
        VirtAddr(value)
    }
}

impl From<VirtAddr> for u32 {
    fn from(addr: VirtAddr) -> Self {
        addr.0
    }
}

impl From<VirtAddr> for u64 {
    fn from(addr: VirtAddr) -> Self {
        u64::from(addr.0)
    }
}

impl Add<u32> for VirtAddr {
    type Output = VirtAddr;

    /// Unchecked-feel addition for ergonomic address math in tests and
    /// layout code.
    ///
    /// # Panics
    ///
    /// Panics on address-space overflow; use [`VirtAddr::checked_add`] where
    /// the offset is attacker-influenced.
    fn add(self, rhs: u32) -> VirtAddr {
        VirtAddr(self.0.checked_add(rhs).expect("address overflow"))
    }
}

impl AddAssign<u32> for VirtAddr {
    fn add_assign(&mut self, rhs: u32) {
        *self = *self + rhs;
    }
}

impl Sub<u32> for VirtAddr {
    type Output = VirtAddr;

    /// # Panics
    ///
    /// Panics on underflow below address 0.
    fn sub(self, rhs: u32) -> VirtAddr {
        VirtAddr(self.0.checked_sub(rhs).expect("address underflow"))
    }
}

/// The C data model of the simulated platform.
///
/// The paper's layout arguments assume ILP32 ("4 bytes in Ubuntu Linux" for
/// `int`, pointers and the StackGuard canary). [`DataModel::Lp64`] is
/// provided for the layout-ablation experiment (E22), where pointer-sized
/// slots double and the overflow lands on different victim words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataModel {
    /// `int` = `long` = pointer = 4 bytes (x86-32, the paper's platform).
    #[default]
    Ilp32,
    /// `int` = 4, `long` = pointer = 8 bytes (x86-64, for the ablation).
    Lp64,
}

impl DataModel {
    /// Size in bytes of a pointer (and of the saved return address, saved
    /// frame pointer and canary word).
    pub const fn pointer_size(self) -> u32 {
        match self {
            DataModel::Ilp32 => 4,
            DataModel::Lp64 => 8,
        }
    }

    /// Size in bytes of `long`.
    pub const fn long_size(self) -> u32 {
        match self {
            DataModel::Ilp32 => 4,
            DataModel::Lp64 => 8,
        }
    }

    /// Alignment of `double` inside a struct.
    ///
    /// The i386 System V ABI aligns `double` struct members to 4 bytes,
    /// while x86-64 aligns them to 8. The paper's §3.7.2 padding argument
    /// is sensitive to this; the ablation experiment varies it.
    pub const fn double_align(self) -> u32 {
        match self {
            DataModel::Ilp32 => 4,
            DataModel::Lp64 => 8,
        }
    }
}

impl fmt::Display for DataModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataModel::Ilp32 => f.write_str("ILP32"),
            DataModel::Lp64 => f.write_str("LP64"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_hex() {
        assert_eq!(VirtAddr::new(0xdead).to_string(), "0x0000dead");
    }

    #[test]
    fn checked_add_detects_overflow() {
        let a = VirtAddr::new(u32::MAX - 3);
        assert!(a.checked_add(3).is_ok());
        assert!(a.checked_add(4).is_err());
    }

    #[test]
    fn checked_sub_detects_underflow() {
        let a = VirtAddr::new(4);
        assert_eq!(a.checked_sub(4).unwrap(), VirtAddr::NULL);
        assert!(a.checked_sub(5).is_err());
    }

    #[test]
    fn alignment_round_trips() {
        let a = VirtAddr::new(0x1003);
        assert_eq!(a.align_up(8).value(), 0x1008);
        assert_eq!(a.align_down(8).value(), 0x1000);
        assert!(a.align_up(8).is_aligned(8));
        assert!(!a.is_aligned(2));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn align_rejects_non_power_of_two() {
        VirtAddr::new(0).align_up(3);
    }

    #[test]
    fn checked_align_up_detects_overflow() {
        let top = VirtAddr::new(u32::MAX - 2);
        assert!(top.checked_align_up(16).is_err());
        assert_eq!(
            VirtAddr::new(u32::MAX - 15).checked_align_up(16).unwrap().value(),
            u32::MAX - 15
        );
    }

    #[test]
    #[should_panic(expected = "address overflow in align_up")]
    fn align_up_panics_instead_of_wrapping() {
        VirtAddr::new(u32::MAX).align_up(8);
    }

    #[test]
    fn offset_from_measures_distance() {
        let base = VirtAddr::new(0x1000);
        assert_eq!((base + 24).offset_from(base), 24);
    }

    #[test]
    #[should_panic(expected = "offset_from")]
    fn offset_from_panics_when_reversed() {
        VirtAddr::new(0).offset_from(VirtAddr::new(1));
    }

    #[test]
    fn data_model_sizes_match_the_paper() {
        // "the size of each of the addresses (frame pointer) and the canary
        // is same as the size of an int (4 bytes in Ubuntu Linux)" — §3.6.1.
        assert_eq!(DataModel::Ilp32.pointer_size(), 4);
        assert_eq!(DataModel::Lp64.pointer_size(), 8);
        assert_eq!(DataModel::Ilp32.double_align(), 4);
        assert_eq!(DataModel::Lp64.double_align(), 8);
    }

    #[test]
    fn null_is_null() {
        assert!(VirtAddr::NULL.is_null());
        assert!(!VirtAddr::new(1).is_null());
        assert_eq!(VirtAddr::default(), VirtAddr::NULL);
    }

    #[test]
    fn conversions() {
        let a: VirtAddr = 7u32.into();
        assert_eq!(u32::from(a), 7);
        assert_eq!(u64::from(a), 7);
        assert_eq!(format!("{a:x}"), "7");
        assert_eq!(format!("{a:X}"), "7");
    }

    #[test]
    fn operator_add_sub() {
        let mut a = VirtAddr::new(16);
        a += 16;
        assert_eq!(a, VirtAddr::new(32));
        assert_eq!(a - 8, VirtAddr::new(24));
    }
}
