//! Exports the whole IR corpus as `.pnx` files for use with `pncheck`.
//!
//! ```text
//! usage: corpus-export <output-dir>
//! ```

use std::process::ExitCode;

use pnew_corpus::{benign, listings};
use pnew_detector::pretty_program;

fn main() -> ExitCode {
    let Some(dir) = std::env::args().nth(1) else {
        eprintln!("usage: corpus-export <output-dir>");
        return ExitCode::from(2);
    };
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("corpus-export: {}: {e}", dir.display());
        return ExitCode::from(2);
    }
    let mut n = 0usize;
    for prog in listings::vulnerable_corpus().into_iter().chain(benign::benign_corpus()) {
        let path = dir.join(format!("{}.pnx", prog.name));
        if let Err(e) = std::fs::write(&path, pretty_program(&prog)) {
            eprintln!("corpus-export: {}: {e}", path.display());
            return ExitCode::from(2);
        }
        n += 1;
    }
    println!("wrote {n} programs to {}", dir.display());
    ExitCode::SUCCESS
}
