//! Runnable-scenario index: paper listing → machine attack.
//!
//! The runnable transcriptions of the listings live in
//! [`pnew_core::attacks`]; this module maps them to listing/experiment ids
//! so harnesses (the experiment report, benches, integration tests) can
//! iterate the corpus uniformly.

use pnew_core::attacks::{self, AttackFn};
use pnew_core::AttackKind;

/// One runnable corpus entry.
#[derive(Clone)]
pub struct Scenario {
    /// Experiment id from DESIGN.md (`E1`…`E19`).
    pub experiment: &'static str,
    /// The listing(s) or section reproduced.
    pub listing: &'static str,
    /// The attack kind.
    pub kind: AttackKind,
    /// The runner.
    pub run: AttackFn,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("experiment", &self.experiment)
            .field("listing", &self.listing)
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

/// All runnable scenarios, in experiment order.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            experiment: "E1",
            listing: "Listing 11",
            kind: AttackKind::BssOverflow,
            run: attacks::bss_overflow::run,
        },
        Scenario {
            experiment: "E1b",
            listing: "Listing 10 (§3.4 internal overflow)",
            kind: AttackKind::InternalOverflow,
            run: attacks::internal_overflow::run,
        },
        Scenario {
            experiment: "E2",
            listing: "Listing 12",
            kind: AttackKind::HeapOverflow,
            run: attacks::heap_overflow::run,
        },
        Scenario {
            experiment: "E3",
            listing: "Listing 13",
            kind: AttackKind::StackSmash,
            run: attacks::stack_smash::run_naive,
        },
        Scenario {
            experiment: "E4",
            listing: "Listing 13 (§5.2 selective)",
            kind: AttackKind::CanaryBypass,
            run: attacks::stack_smash::run_selective,
        },
        Scenario {
            experiment: "E5",
            listing: "§3.6.2 (arc injection)",
            kind: AttackKind::ArcInjection,
            run: attacks::arc_injection::run,
        },
        Scenario {
            experiment: "E6",
            listing: "§3.6.2 (code injection)",
            kind: AttackKind::CodeInjection,
            run: attacks::code_injection::run,
        },
        Scenario {
            experiment: "E7",
            listing: "Listing 14",
            kind: AttackKind::GlobalVarMod,
            run: attacks::global_var::run,
        },
        Scenario {
            experiment: "E8",
            listing: "Listing 15",
            kind: AttackKind::StackLocalMod,
            run: attacks::stack_local::run,
        },
        Scenario {
            experiment: "E9",
            listing: "Listing 16",
            kind: AttackKind::MemberVarMod,
            run: attacks::member_var::run,
        },
        Scenario {
            experiment: "E10",
            listing: "§3.8.2 (via data/bss)",
            kind: AttackKind::VptrSubterfuge,
            run: attacks::vptr_subterfuge::run_bss,
        },
        Scenario {
            experiment: "E11",
            listing: "§3.8.2 (via stack)",
            kind: AttackKind::VptrSubterfuge,
            run: attacks::vptr_subterfuge::run_stack,
        },
        Scenario {
            experiment: "E12",
            listing: "Listing 17",
            kind: AttackKind::FnPtrSubterfuge,
            run: attacks::fnptr_subterfuge::run,
        },
        Scenario {
            experiment: "E13",
            listing: "Listing 18",
            kind: AttackKind::VarPtrSubterfuge,
            run: attacks::varptr_subterfuge::run,
        },
        Scenario {
            experiment: "E14",
            listing: "Listing 19",
            kind: AttackKind::ArrayTwoStepStack,
            run: attacks::array_two_step::run_stack,
        },
        Scenario {
            experiment: "E15",
            listing: "Listing 20",
            kind: AttackKind::ArrayTwoStepBss,
            run: attacks::array_two_step::run_bss,
        },
        Scenario {
            experiment: "E16",
            listing: "Listing 21",
            kind: AttackKind::InfoLeakArray,
            run: attacks::info_leak::run_array,
        },
        Scenario {
            experiment: "E17",
            listing: "Listing 22",
            kind: AttackKind::InfoLeakObject,
            run: attacks::info_leak::run_object,
        },
        Scenario {
            experiment: "E18",
            listing: "§4.4",
            kind: AttackKind::DosLoop,
            run: attacks::dos_loop::run,
        },
        Scenario {
            experiment: "E19",
            listing: "Listing 23",
            kind: AttackKind::MemoryLeak,
            run: attacks::memory_leak::run,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnew_core::AttackConfig;

    #[test]
    fn experiments_are_unique_and_ordered() {
        let s = scenarios();
        assert_eq!(s.len(), 20);
        assert_eq!(s[0].experiment, "E1");
        assert_eq!(s[1].experiment, "E1b");
        assert_eq!(s[19].experiment, "E19");
        let mut ids: Vec<&str> = s.iter().map(|x| x.experiment).collect();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn every_scenario_runs_under_the_paper_config() {
        for sc in scenarios() {
            let report = (sc.run)(&AttackConfig::paper())
                .unwrap_or_else(|e| panic!("{} failed to run: {e}", sc.experiment));
            assert_eq!(report.kind, sc.kind, "{}", sc.experiment);
        }
    }

    #[test]
    fn debug_impl_is_informative() {
        let s = &scenarios()[0];
        let text = format!("{s:?}");
        assert!(text.contains("E1"));
        assert!(text.contains("Listing 11"));
    }
}
