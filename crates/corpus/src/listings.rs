//! The paper's listings, encoded in the detector IR.
//!
//! Every listing of *Kundu & Bertino (ICDCS 2011)* that contains a
//! vulnerability is transcribed here as an analyzable program. Class
//! sizes are computed by the real layout engine
//! ([`pnew_object`]) under the paper's platform policy, so the analyzer
//! reasons about the same `sizeof` values the attacks exploit.
//!
//! Listings 1–3 define the running example and the benign illustrative
//! uses; Listing 2's bounded copy lives in the benign corpus
//! ([`crate::benign`]).

use pnew_detector::{CmpOp, Expr, Program, ProgramBuilder, Ty};
use pnew_object::{ClassRegistry, CxxType, LayoutPolicy};

/// Computed `sizeof` values of the running-example classes under the
/// paper's platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudentSizes {
    /// `sizeof(Student)`.
    pub student: u32,
    /// `sizeof(GradStudent)`.
    pub grad: u32,
}

/// Computes the class sizes with the real layout engine.
pub fn student_sizes(virtuals: bool) -> StudentSizes {
    let mut reg = ClassRegistry::new();
    let mut student = reg
        .class("Student")
        .field("gpa", CxxType::Double)
        .field("year", CxxType::Int)
        .field("semester", CxxType::Int);
    if virtuals {
        student = student.virtual_method("getInfo");
    }
    let student = student.register();
    let mut grad =
        reg.class("GradStudent").base(student).field("ssn", CxxType::array(CxxType::Int, 3));
    if virtuals {
        grad = grad.virtual_method("getInfo");
    }
    let grad = grad.register();
    let policy = LayoutPolicy::paper();
    StudentSizes {
        student: reg.size_of(student, &policy).expect("layout"),
        grad: reg.size_of(grad, &policy).expect("layout"),
    }
}

/// Registers Student/GradStudent on an IR program with engine-computed
/// sizes.
fn students(p: &mut ProgramBuilder, virtuals: bool) {
    let s = student_sizes(virtuals);
    p.class("Student", s.student, None, virtuals);
    p.class("GradStudent", s.grad, Some("Student"), virtuals);
}

/// Listing 1/4 — object overflow via construction:
/// `GradStudent *gs = new (&s) GradStudent(4.0, 2009, 1);`
pub fn listing_04() -> Program {
    let mut p = ProgramBuilder::new("listing-04-construction");
    students(&mut p, false);
    let mut f = p.function("main");
    let stud = f.local("stud", Ty::Class("Student".into()));
    let gs = f.local("gs", Ty::Ptr);
    f.placement_new(gs, Expr::addr_of(stud), "GradStudent");
    f.finish();
    p.build()
}

/// Listing 3 — a `string` object placed over a small char pool.
pub fn listing_03() -> Program {
    let mut p = ProgramBuilder::new("listing-03-string-object");
    // A (simplified) std::string footprint larger than the pool.
    p.class("string", 24, None, false);
    let pool = {
        let pb = &mut p;
        pb.global("uname_buf", Ty::CharArray(Some(16)))
    };
    let mut f = p.function("checkUname");
    let s = f.local("str", Ty::Ptr);
    f.placement_new(s, Expr::addr_of(pool), "string");
    f.finish();
    p.build()
}

/// Listing 5 — array placement whose count comes from a malicious
/// service.
pub fn listing_05() -> Program {
    let mut p = ProgramBuilder::new("listing-05-remote-count");
    students(&mut p, false);
    let pool = p.global("st_pool", Ty::CharArray(Some(64)));
    let mut f = p.function("main");
    let n = f.local("n", Ty::Int);
    let names = f.local("stnames", Ty::Ptr);
    f.read_input(n); // service.getNames() length, maliciously changed
    f.placement_new_array(names, Expr::addr_of(pool), 4, Expr::Var(n));
    f.finish();
    p.build()
}

/// Listing 6 — copy of tainted fields into a placed object.
pub fn listing_06() -> Program {
    let mut p = ProgramBuilder::new("listing-06-copy-fields");
    students(&mut p, false);
    let stud = p.global("stud", Ty::Class("Student".into()));
    let mut f = p.function("addStudent");
    let remote = f.param("remoteobj", Ty::Ptr, true);
    let st = f.local("st", Ty::Ptr);
    f.placement_new_with(st, Expr::addr_of(stud), "GradStudent", vec![Expr::Var(remote)]);
    f.finish();
    p.build()
}

/// Listing 7 — copy constructor from a received object.
pub fn listing_07() -> Program {
    let mut p = ProgramBuilder::new("listing-07-copy-ctor");
    students(&mut p, false);
    let stud = p.global("stud", Ty::Class("Student".into()));
    let mut f = p.function("addStudent");
    let remote = f.param("remoteobj", Ty::Ptr, true);
    let st = f.local("st", Ty::Ptr);
    f.placement_new_with(st, Expr::addr_of(stud), "GradStudent", vec![Expr::Var(remote)]);
    f.finish();
    p.build()
}

/// Listing 8 — indirect construction through an intermediate object.
pub fn listing_08() -> Program {
    let mut p = ProgramBuilder::new("listing-08-indirect");
    students(&mut p, false);
    p.class("Someclass", 48, None, false);
    let stud = p.global("stud", Ty::Class("Student".into()));
    let mut f = p.function("addStudent");
    let remote = f.param("remoteobj", Ty::Ptr, true);
    let obj2 = f.local("obj2", Ty::Ptr);
    let st = f.local("st", Ty::Ptr);
    f.heap_new(obj2, "Someclass");
    f.assign(obj2, Expr::Var(remote)); // dataflow path remote -> obj2
    f.placement_new_with(st, Expr::addr_of(stud), "GradStudent", vec![Expr::Var(obj2)]);
    f.finish();
    p.build()
}

/// §3.3 — the inter-procedural variant of Listing 8: the tainted count
/// travels through a direct call into a helper whose own parameter is
/// untainted.
pub fn listing_08_interprocedural() -> Program {
    let mut p = ProgramBuilder::new("listing-08b-interprocedural");
    students(&mut p, false);
    let pool = p.global("st_pool", Ty::CharArray(Some(64)));
    let mut helper = p.function("placeNames");
    let count = helper.param("count", Ty::Int, false);
    let names = helper.local("stnames", Ty::Ptr);
    helper.placement_new_array(names, Expr::addr_of(pool), 4, Expr::Var(count));
    helper.finish();
    let mut main = p.function("main");
    let n = main.local("n", Ty::Int);
    main.read_input(n); // service.getNames() length
    main.call("placeNames", vec![Expr::Var(n)]);
    main.finish();
    p.build()
}

/// Listing 9 — `A obj2 = B()` where `sizeof(B) > sizeof(A)`.
pub fn listing_09() -> Program {
    let mut p = ProgramBuilder::new("listing-09-aggregate-copy");
    p.class("A", 16, None, false);
    p.class("B", 40, Some("A"), false);
    let mut f = p.function("main");
    let a = f.local("obj2", Ty::Class("A".into()));
    let b = f.local("b", Ty::Ptr);
    f.placement_new(b, Expr::addr_of(a), "B");
    f.finish();
    p.build()
}

/// Listing 10 — internal overflow inside `MobilePlayer`.
pub fn listing_10() -> Program {
    let mut p = ProgramBuilder::new("listing-10-internal");
    students(&mut p, false);
    let mut f = p.function("MobilePlayer::addStudentPlayer");
    let stptr = f.param("stptr", Ty::Ptr, true);
    let stud1 = f.local("stud1", Ty::Class("Student".into()));
    let st = f.local("st", Ty::Ptr);
    f.placement_new_with(st, Expr::addr_of(stud1), "GradStudent", vec![Expr::Var(stptr)]);
    f.finish();
    p.build()
}

/// Listing 11 — data/bss overflow: `stud1`'s `ssn[]` reaches `stud2`.
pub fn listing_11() -> Program {
    let mut p = ProgramBuilder::new("listing-11-bss");
    students(&mut p, false);
    let stud1 = p.global("stud1", Ty::Class("Student".into()));
    let _stud2 = p.global("stud2", Ty::Class("Student".into()));
    let mut f = p.function("addStudent");
    let st = f.local("st", Ty::Ptr);
    let ssn0 = f.local("ssn0", Ty::Int);
    f.read_input(ssn0);
    f.placement_new(st, Expr::addr_of(stud1), "GradStudent");
    f.field_store(st, "ssn", Expr::Var(ssn0));
    f.finish();
    p.build()
}

/// Listing 12 — heap overflow: the placed object overruns into the
/// neighbouring `name` allocation.
pub fn listing_12() -> Program {
    let mut p = ProgramBuilder::new("listing-12-heap");
    students(&mut p, false);
    let mut f = p.function("main");
    let stud = f.local("stud", Ty::Ptr);
    let name = f.local("name", Ty::Ptr);
    let st = f.local("st", Ty::Ptr);
    let ssn0 = f.local("ssn0", Ty::Int);
    f.heap_new(stud, "Student");
    f.heap_new_array(name, Expr::Const(16));
    f.placement_new(st, Expr::Var(stud), "GradStudent");
    f.read_input(ssn0);
    f.field_store(st, "ssn", Expr::Var(ssn0));
    f.finish();
    p.build()
}

/// Listing 13 — stack overflow: return-address modification.
pub fn listing_13() -> Program {
    let mut p = ProgramBuilder::new("listing-13-stack");
    students(&mut p, false);
    let mut f = p.function("addStudent");
    let stud = f.local("stud", Ty::Class("Student".into()));
    let gs = f.local("gs", Ty::Ptr);
    let dssn = f.local("dssn", Ty::Int);
    f.placement_new(gs, Expr::addr_of(stud), "GradStudent");
    f.while_start(Expr::Var(dssn), CmpOp::Lt, Expr::Const(3));
    f.read_input(dssn);
    f.if_start(Expr::Var(dssn), CmpOp::Gt, Expr::Const(0));
    f.field_store(gs, "ssn", Expr::Var(dssn));
    f.end_if();
    f.end_while();
    f.finish();
    p.build()
}

/// Listing 14 — modification of data/bss variables (`noOfStudents`).
pub fn listing_14() -> Program {
    let mut p = ProgramBuilder::new("listing-14-globals");
    students(&mut p, false);
    let stud1 = p.global("stud1", Ty::Class("Student".into()));
    let _count = p.global("noOfStudents", Ty::Int);
    let mut f = p.function("addStudent");
    let st = f.local("st", Ty::Ptr);
    let ssn0 = f.local("ssn0", Ty::Int);
    f.read_input(ssn0);
    f.placement_new(st, Expr::addr_of(stud1), "GradStudent");
    f.field_store(st, "ssn", Expr::Var(ssn0));
    f.finish();
    p.build()
}

/// Listing 15 — overwriting stack locals (`n`, with padding analysis).
pub fn listing_15() -> Program {
    let mut p = ProgramBuilder::new("listing-15-stack-local");
    students(&mut p, false);
    let mut f = p.function("addStudent");
    let n = f.local("n", Ty::Int);
    let stud = f.local("stud", Ty::Class("Student".into()));
    let gs = f.local("gs", Ty::Ptr);
    f.assign(n, Expr::Const(5));
    f.placement_new(gs, Expr::addr_of(stud), "GradStudent");
    f.finish();
    p.build()
}

/// Listing 16 — overwriting member variables of a neighbouring object.
pub fn listing_16() -> Program {
    let mut p = ProgramBuilder::new("listing-16-member");
    students(&mut p, false);
    let mut f = p.function("addStudent");
    let _first = f.local("first", Ty::Class("Student".into()));
    let stud = f.local("stud", Ty::Class("Student".into()));
    let gs = f.local("gs", Ty::Ptr);
    let ssn0 = f.local("ssn0", Ty::Int);
    f.placement_new(gs, Expr::addr_of(stud), "GradStudent");
    f.read_input(ssn0);
    f.field_store(gs, "ssn", Expr::Var(ssn0));
    f.finish();
    p.build()
}

/// §3.8.2 — vptr subterfuge (virtual classes; the oversized placement can
/// reach an adjacent object's vtable pointer).
pub fn listing_vptr() -> Program {
    let mut p = ProgramBuilder::new("listing-vptr-subterfuge");
    students(&mut p, true);
    let stud1 = p.global("stud1", Ty::Class("Student".into()));
    let stud2 = p.global("stud2", Ty::Class("Student".into()));
    let mut f = p.function("main");
    let st = f.local("st", Ty::Ptr);
    let ssn0 = f.local("ssn0", Ty::Int);
    f.read_input(ssn0);
    f.placement_new(st, Expr::addr_of(stud1), "GradStudent");
    f.field_store(st, "ssn", Expr::Var(ssn0));
    f.virtual_call(stud2, "getInfo");
    f.finish();
    p.build()
}

/// Listing 17 — function pointer subterfuge.
pub fn listing_17() -> Program {
    let mut p = ProgramBuilder::new("listing-17-fnptr");
    students(&mut p, false);
    let mut f = p.function("addStudent");
    let fnptr = f.local("createStudentAccount", Ty::Ptr);
    let stud = f.local("stud", Ty::Class("Student".into()));
    let gs = f.local("gs", Ty::Ptr);
    f.null_assign(fnptr);
    f.placement_new(gs, Expr::addr_of(stud), "GradStudent");
    f.call_ptr(fnptr);
    f.finish();
    p.build()
}

/// Listing 18 — variable pointer subterfuge.
pub fn listing_18() -> Program {
    let mut p = ProgramBuilder::new("listing-18-varptr");
    students(&mut p, false);
    let stud = p.global("stud", Ty::Class("Student".into()));
    let name = p.global("name", Ty::Ptr);
    let mut f = p.function("main");
    let st = f.local("st", Ty::Ptr);
    let ssn0 = f.local("ssn0", Ty::Int);
    f.heap_new_array(name, Expr::Const(16));
    f.placement_new(st, Expr::addr_of(stud), "GradStudent");
    f.read_input(ssn0);
    f.field_store(st, "ssn", Expr::Var(ssn0));
    f.finish();
    p.build()
}

/// Listing 19 — the two-step array overflow on the stack.
pub fn listing_19() -> Program {
    let mut p = ProgramBuilder::new("listing-19-two-step-stack");
    students(&mut p, false);
    let mut f = p.function("sortAndAddUname");
    let uname = f.param("uname", Ty::Ptr, true);
    let pool = f.local("mem_pool", Ty::CharArray(Some(72)));
    let n_unames = f.local("n_unames", Ty::Int);
    let stud = f.local("stud", Ty::Class("Student".into()));
    let st = f.local("st", Ty::Ptr);
    let buf = f.local("buf", Ty::Ptr);
    f.read_input(n_unames);
    f.if_start(Expr::Var(n_unames), CmpOp::Gt, Expr::Const(8));
    f.ret();
    f.end_if();
    f.placement_new(st, Expr::addr_of(stud), "GradStudent"); // step 1
    f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n_unames));
    f.strncpy(buf, Expr::Var(uname), Expr::mul(Expr::Var(n_unames), Expr::Const(9)));
    f.finish();
    p.build()
}

/// Listing 20 — the two-step overflow with a bss pool.
pub fn listing_20() -> Program {
    let mut p = ProgramBuilder::new("listing-20-two-step-bss");
    students(&mut p, false);
    let pool = p.global("mem_pool", Ty::CharArray(Some(72)));
    let _n_staff = p.global("n_staff", Ty::Int);
    let mut f = p.function("sortAndAddUname");
    let uname = f.param("uname", Ty::Ptr, true);
    let n_unames = f.local("n_unames", Ty::Int);
    let stud = f.local("stud", Ty::Class("Student".into()));
    let st = f.local("st", Ty::Ptr);
    let buf = f.local("buf", Ty::Ptr);
    f.read_input(n_unames);
    f.placement_new(st, Expr::addr_of(stud), "GradStudent");
    f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n_unames));
    f.strncpy(buf, Expr::Var(uname), Expr::mul(Expr::Var(n_unames), Expr::Const(9)));
    f.finish();
    p.build()
}

/// Listing 21 — information leakage via array reuse over a password file.
pub fn listing_21() -> Program {
    let mut p = ProgramBuilder::new("listing-21-info-leak-array");
    let pool = p.global("mem_pool", Ty::CharArray(Some(192)));
    let mut f = p.function("main");
    let userdata = f.local("userdata", Ty::Ptr);
    f.read_secret(pool); // mmap/read the password file
    f.placement_new_array(userdata, Expr::addr_of(pool), 1, Expr::Const(192));
    f.output(userdata); // store(userdata)
    f.finish();
    p.build()
}

/// Listing 22 — information leakage via object reuse (SSN residue).
pub fn listing_22() -> Program {
    let mut p = ProgramBuilder::new("listing-22-info-leak-object");
    students(&mut p, false);
    let mut f = p.function("main");
    let gst = f.local("gst", Ty::Ptr);
    let st = f.local("st", Ty::Ptr);
    f.heap_new(gst, "GradStudent");
    f.placement_new(st, Expr::Var(gst), "Student");
    f.output(st);
    f.finish();
    p.build()
}

/// Listing 23 — memory leak: released through the smaller type in a loop.
pub fn listing_23() -> Program {
    let mut p = ProgramBuilder::new("listing-23-memory-leak");
    students(&mut p, false);
    let mut f = p.function("addStudent");
    let i = f.local("i", Ty::Int);
    let stud = f.local("stud", Ty::Ptr);
    let st = f.local("st", Ty::Ptr);
    f.assign(i, Expr::Const(0));
    f.while_start(Expr::Var(i), CmpOp::Lt, Expr::Const(100));
    f.heap_new(stud, "GradStudent");
    f.placement_new(st, Expr::Var(stud), "Student");
    f.delete(st, Some("Student"));
    f.null_assign(stud);
    f.assign(i, Expr::add(Expr::Var(i), Expr::Const(2)));
    f.end_while();
    f.finish();
    p.build()
}

/// §2.5 item 1 — `char c; int *b = new (&c) int;` (the degenerate
/// scalar-arena placement; encoded as a class of size 4 placed over a
/// char).
pub fn listing_scalar_arena() -> Program {
    let mut p = ProgramBuilder::new("listing-scalar-arena");
    p.class("int_box", 4, None, false);
    let mut f = p.function("main");
    let c = f.local("c", Ty::Char);
    let b = f.local("b", Ty::Ptr);
    f.placement_new(b, Expr::addr_of(c), "int_box");
    f.finish();
    p.build()
}

/// §5.1 — a placement whose arena is an untracked pointer (bounds
/// unknowable), the honest-limitation case.
pub fn listing_unknown_bounds() -> Program {
    let mut p = ProgramBuilder::new("listing-unknown-bounds");
    students(&mut p, false);
    let mut f = p.function("place_somewhere");
    let dest = f.param("dest", Ty::Ptr, false);
    let st = f.local("st", Ty::Ptr);
    f.placement_new(st, Expr::Var(dest), "GradStudent");
    f.finish();
    p.build()
}

/// §3.5-style loop-carried taint: the placement count is clean on the
/// first iteration, but the loop body copies tainted input into it, so
/// the oversized placement happens only on the second pass. A single
/// pass over the loop body against the entry state misses this; the
/// bounded fixpoint re-analysis flags it.
pub fn listing_loop_carried() -> Program {
    let mut p = ProgramBuilder::new("loop-carried-taint");
    let pool = p.global("pool", Ty::CharArray(Some(64)));
    let mut f = p.function("main");
    let n = f.local("n", Ty::Int);
    let m = f.local("m", Ty::Int);
    let i = f.local("i", Ty::Int);
    let buf = f.local("buf", Ty::Ptr);
    f.read_input(n);
    f.assign(i, Expr::Const(0));
    f.while_start(Expr::Var(i), CmpOp::Ne, Expr::Const(2));
    f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(m));
    f.assign(m, Expr::Var(n));
    f.assign(i, Expr::add(Expr::Var(i), Expr::Const(1)));
    f.end_while();
    f.finish();
    p.build()
}

/// The full vulnerable corpus, in paper order.
pub fn vulnerable_corpus() -> Vec<Program> {
    vec![
        listing_03(),
        listing_04(),
        listing_05(),
        listing_06(),
        listing_07(),
        listing_08(),
        listing_08_interprocedural(),
        listing_09(),
        listing_10(),
        listing_11(),
        listing_12(),
        listing_13(),
        listing_14(),
        listing_15(),
        listing_16(),
        listing_vptr(),
        listing_17(),
        listing_18(),
        listing_19(),
        listing_20(),
        listing_21(),
        listing_22(),
        listing_23(),
        listing_scalar_arena(),
        listing_unknown_bounds(),
        listing_loop_carried(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnew_detector::{Analyzer, Severity};

    #[test]
    fn sizes_come_from_the_layout_engine() {
        let plain = student_sizes(false);
        assert_eq!(plain.student, 16);
        assert_eq!(plain.grad, 32);
        let virt = student_sizes(true);
        assert_eq!(virt.student, 24);
        assert_eq!(virt.grad, 40);
    }

    #[test]
    fn corpus_has_all_listings() {
        let corpus = vulnerable_corpus();
        assert_eq!(corpus.len(), 26);
        // Unique names.
        let mut names: Vec<&str> = corpus.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn analyzer_detects_every_listing_except_the_honest_unknowns() {
        let analyzer = Analyzer::new();
        for prog in vulnerable_corpus() {
            let report = analyzer.analyze(&prog);
            if prog.name == "listing-unknown-bounds" {
                // §5.1: here the tool can only warn.
                assert!(report.detected(), "{} should at least warn", prog.name);
                assert!(
                    !report.detected_at(Severity::Warning),
                    "{} has unknowable bounds",
                    prog.name
                );
            } else {
                assert!(
                    report.detected_at(Severity::Warning),
                    "{}: expected a warning-or-better finding, got: {report}",
                    prog.name
                );
            }
        }
    }

    #[test]
    fn every_program_is_nonempty() {
        for prog in vulnerable_corpus() {
            assert!(prog.stmt_count() > 0, "{} is empty", prog.name);
            assert!(!prog.functions.is_empty());
        }
    }
}
