//! Program corpus for the reproduction: the paper's listings, benign
//! counterparts, and workload generators.
//!
//! Three views of the same material:
//!
//! * [`listings`] — every vulnerable listing of the paper transcribed into
//!   the detector IR (sizes computed by the real layout engine);
//! * [`benign`] — sixteen §5.1-correct programs for false-positive
//!   measurement;
//! * [`scenarios`](crate::scenarios::scenarios) — the runnable machine
//!   transcriptions (from [`pnew_core::attacks`]) indexed by experiment
//!   id;
//! * [`workload`] — seeded generators for inputs, populations, and random
//!   safe/vulnerable programs.
//!
//! # Examples
//!
//! Reproduce the paper's coverage-gap claim over the whole corpus:
//!
//! ```
//! use pnew_corpus::{benign, listings};
//! use pnew_detector::{Analyzer, BaselineChecker, Severity};
//!
//! let analyzer = Analyzer::new();
//! let baseline = BaselineChecker::new();
//! let vulnerable = listings::vulnerable_corpus();
//!
//! let ours = vulnerable.iter().filter(|p| analyzer.analyze(p).detected()).count();
//! let theirs = vulnerable.iter().filter(|p| baseline.analyze(p).detected()).count();
//! assert_eq!(ours, vulnerable.len());  // we see every listing
//! assert_eq!(theirs, 0);               // traditional tools see none
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benign;
pub mod listings;
pub mod scenarios;
pub mod workload;

pub use scenarios::{scenarios, Scenario};
