//! Correct programs for false-positive measurement.
//!
//! Each program uses placement new (or classic copies) the way §5.1
//! prescribes: sizes checked, arenas big enough, reuse sanitized, blocks
//! released in full. The detector experiment (E21) requires the analyzer
//! to stay quiet (no warning-or-better finding) on all of them.

use pnew_detector::{CmpOp, Expr, Program, ProgramBuilder, Ty};

use crate::listings::student_sizes;

fn students(p: &mut ProgramBuilder) {
    let s = student_sizes(false);
    p.class("Student", s.student, None, false);
    p.class("GradStudent", s.grad, Some("Student"), false);
}

/// Same-size placement: `new (&stud) Student()`.
pub fn benign_same_size() -> Program {
    let mut p = ProgramBuilder::new("benign-same-size");
    students(&mut p);
    let mut f = p.function("main");
    let stud = f.local("stud", Ty::Class("Student".into()));
    let st = f.local("st", Ty::Ptr);
    f.placement_new(st, Expr::addr_of(stud), "Student");
    f.finish();
    p.build()
}

/// Subclass placed into a pool sized for it.
pub fn benign_sized_pool() -> Program {
    let mut p = ProgramBuilder::new("benign-sized-pool");
    students(&mut p);
    let pool = p.global("pool", Ty::CharArray(Some(64)));
    let mut f = p.function("main");
    let gs = f.local("gs", Ty::Ptr);
    f.placement_new(gs, Expr::addr_of(pool), "GradStudent");
    f.finish();
    p.build()
}

/// Listing 2's bounded copy: `n <= SIZE` enforced by construction.
pub fn benign_listing_02() -> Program {
    let mut p = ProgramBuilder::new("benign-listing-02");
    let pool = p.global("uname_buf", Ty::CharArray(Some(64)));
    let mut f = p.function("checkUname");
    let uname = f.param("uname", Ty::Ptr, true);
    let n = f.local("n", Ty::Int);
    let buf = f.local("buf", Ty::Ptr);
    f.assign(n, Expr::Const(64));
    f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(n));
    f.strncpy(buf, Expr::Var(uname), Expr::Var(n));
    f.finish();
    p.build()
}

/// Constant array placement within bounds.
pub fn benign_const_array() -> Program {
    let mut p = ProgramBuilder::new("benign-const-array");
    let pool = p.global("pool", Ty::CharArray(Some(128)));
    let mut f = p.function("main");
    let buf = f.local("buf", Ty::Ptr);
    f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Const(128));
    f.finish();
    p.build()
}

/// Sanitized arena reuse: memset between the secret and the next tenant.
pub fn benign_sanitized_reuse() -> Program {
    let mut p = ProgramBuilder::new("benign-sanitized-reuse");
    let pool = p.global("mem_pool", Ty::CharArray(Some(192)));
    let mut f = p.function("main");
    let userdata = f.local("userdata", Ty::Ptr);
    f.read_secret(pool);
    f.memset(pool, Expr::Const(192));
    f.placement_new_array(userdata, Expr::addr_of(pool), 1, Expr::Const(192));
    f.output(userdata);
    f.finish();
    p.build()
}

/// Proper placement delete: the block is released through its allocated
/// type.
pub fn benign_placement_delete() -> Program {
    let mut p = ProgramBuilder::new("benign-placement-delete");
    students(&mut p);
    let mut f = p.function("main");
    let stud = f.local("stud", Ty::Ptr);
    let st = f.local("st", Ty::Ptr);
    f.heap_new(stud, "GradStudent");
    f.placement_new(st, Expr::Var(stud), "Student");
    f.delete(st, Some("GradStudent"));
    f.null_assign(stud);
    f.finish();
    p.build()
}

/// A copy that fits its lexical buffer.
pub fn benign_bounded_copy() -> Program {
    let mut p = ProgramBuilder::new("benign-bounded-copy");
    let mut f = p.function("main");
    let input = f.param("input", Ty::Ptr, true);
    let buf = f.local("buf", Ty::CharArray(Some(64)));
    f.strncpy(buf, Expr::Var(input), Expr::Const(64));
    f.finish();
    p.build()
}

/// Tainted input clamped to a constant before use.
pub fn benign_clamped_input() -> Program {
    let mut p = ProgramBuilder::new("benign-clamped-input");
    let pool = p.global("pool", Ty::CharArray(Some(72)));
    let mut f = p.function("main");
    let n = f.local("n", Ty::Int);
    let buf = f.local("buf", Ty::Ptr);
    f.read_input(n);
    f.assign(n, Expr::Const(8)); // clamp: overwrite with a safe constant
    f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n));
    f.finish();
    p.build()
}

/// Heap array allocation with a tainted length (the allocator sizes the
/// buffer itself; no placement involved).
pub fn benign_heap_array() -> Program {
    let mut p = ProgramBuilder::new("benign-heap-array");
    let mut f = p.function("main");
    let n = f.local("n", Ty::Int);
    let buf = f.local("buf", Ty::Ptr);
    f.read_input(n);
    f.heap_new_array(buf, Expr::Var(n));
    f.finish();
    p.build()
}

/// Correct virtual dispatch on a properly placed object.
pub fn benign_virtual_dispatch() -> Program {
    let mut p = ProgramBuilder::new("benign-virtual-dispatch");
    let s = student_sizes(true);
    p.class("Student", s.student, None, true);
    p.class("GradStudent", s.grad, Some("Student"), true);
    let pool = p.global("pool", Ty::CharArray(Some(64)));
    let mut f = p.function("main");
    let gs = f.local("gs", Ty::Ptr);
    f.placement_new(gs, Expr::addr_of(pool), "GradStudent");
    f.virtual_call(gs, "getInfo");
    f.finish();
    p.build()
}

/// Equal-size arena reuse without secrets.
pub fn benign_equal_reuse() -> Program {
    let mut p = ProgramBuilder::new("benign-equal-reuse");
    students(&mut p);
    let mut f = p.function("main");
    let a = f.local("a", Ty::Ptr);
    let b = f.local("b", Ty::Ptr);
    f.heap_new(a, "Student");
    f.placement_new(b, Expr::Var(a), "Student");
    f.output(b);
    f.finish();
    p.build()
}

/// A guarded function pointer that is never overflowed.
pub fn benign_guarded_fnptr() -> Program {
    let mut p = ProgramBuilder::new("benign-guarded-fnptr");
    let mut f = p.function("main");
    let fnptr = f.local("handler", Ty::Ptr);
    let flag = f.local("flag", Ty::Int);
    f.null_assign(fnptr);
    f.read_input(flag);
    f.if_start(Expr::Var(flag), CmpOp::Gt, Expr::Const(0));
    f.call_ptr(fnptr);
    f.end_if();
    f.finish();
    p.build()
}

/// Placement into a heap block exactly sized with `sizeof`.
pub fn benign_sizeof_block() -> Program {
    let mut p = ProgramBuilder::new("benign-sizeof-block");
    students(&mut p);
    let mut f = p.function("main");
    let block = f.local("block", Ty::Ptr);
    let gs = f.local("gs", Ty::Ptr);
    f.heap_new_array(block, Expr::SizeOf("GradStudent".into()));
    f.placement_new(gs, Expr::Var(block), "GradStudent");
    f.delete(gs, Some("GradStudent"));
    f.finish();
    p.build()
}

/// Construction from a trusted (local, non-tainted) source object.
pub fn benign_trusted_copy() -> Program {
    let mut p = ProgramBuilder::new("benign-trusted-copy");
    students(&mut p);
    let stud = p.global("stud", Ty::Class("Student".into()));
    let mut f = p.function("main");
    let local_src = f.local("template_student", Ty::Ptr);
    let st = f.local("st", Ty::Ptr);
    f.heap_new(local_src, "Student");
    f.placement_new_with(st, Expr::addr_of(stud), "Student", vec![Expr::Var(local_src)]);
    f.finish();
    p.build()
}

/// Tainted *content* copied with a safe constant length.
pub fn benign_tainted_content_safe_len() -> Program {
    let mut p = ProgramBuilder::new("benign-tainted-content-safe-len");
    let pool = p.global("pool", Ty::CharArray(Some(64)));
    let mut f = p.function("main");
    let input = f.param("input", Ty::Ptr, true);
    let buf = f.local("buf", Ty::Ptr);
    f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Const(64));
    f.strncpy(buf, Expr::Var(input), Expr::Const(64));
    f.finish();
    p.build()
}

/// Alias of a big-enough buffer used as the arena.
pub fn benign_alias_pool() -> Program {
    let mut p = ProgramBuilder::new("benign-alias-pool");
    students(&mut p);
    let pool = p.global("pool", Ty::CharArray(Some(64)));
    let mut f = p.function("main");
    let alias = f.local("alias", Ty::Ptr);
    let gs = f.local("gs", Ty::Ptr);
    f.assign(alias, Expr::addr_of(pool));
    f.placement_new(gs, Expr::Var(alias), "GradStudent");
    f.finish();
    p.build()
}

/// A genuinely effective bounds check: `if (n > 8) return;` before the
/// placement, with no earlier overflow to defeat it (contrast Listing 19).
pub fn benign_guarded_count() -> Program {
    let mut p = ProgramBuilder::new("benign-guarded-count");
    let pool = p.global("mem_pool", Ty::CharArray(Some(72)));
    let mut f = p.function("sortAndAddUname");
    let uname = f.param("uname", Ty::Ptr, true);
    let n = f.local("n_unames", Ty::Int);
    let buf = f.local("buf", Ty::Ptr);
    f.read_input(n);
    f.if_start(Expr::Var(n), CmpOp::Gt, Expr::Const(8));
    f.ret();
    f.end_if();
    f.placement_new_array(buf, Expr::addr_of(pool), 9, Expr::Var(n));
    f.strncpy(buf, Expr::Var(uname), Expr::mul(Expr::Var(n), Expr::Const(9)));
    f.finish();
    p.build()
}

/// A safe direct call: the helper receives a constant count that fits.
pub fn benign_cross_call() -> Program {
    let mut p = ProgramBuilder::new("benign-cross-call");
    let pool = p.global("st_pool", Ty::CharArray(Some(64)));
    let mut helper = p.function("placeNames");
    let count = helper.param("count", Ty::Int, false);
    let names = helper.local("stnames", Ty::Ptr);
    helper.placement_new_array(names, Expr::addr_of(pool), 4, Expr::Var(count));
    helper.finish();
    let mut main = p.function("main");
    main.call("placeNames", vec![Expr::Const(16)]);
    main.finish();
    p.build()
}

/// The whole benign corpus.
pub fn benign_corpus() -> Vec<Program> {
    vec![
        benign_same_size(),
        benign_sized_pool(),
        benign_listing_02(),
        benign_const_array(),
        benign_sanitized_reuse(),
        benign_placement_delete(),
        benign_bounded_copy(),
        benign_clamped_input(),
        benign_heap_array(),
        benign_virtual_dispatch(),
        benign_equal_reuse(),
        benign_guarded_fnptr(),
        benign_sizeof_block(),
        benign_trusted_copy(),
        benign_tainted_content_safe_len(),
        benign_alias_pool(),
        benign_guarded_count(),
        benign_cross_call(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnew_detector::{Analyzer, BaselineChecker, Severity};

    #[test]
    fn corpus_is_complete_and_unique() {
        let corpus = benign_corpus();
        assert_eq!(corpus.len(), 18);
        let mut names: Vec<&str> = corpus.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn analyzer_has_no_false_positives_at_warning_level() {
        let analyzer = Analyzer::new();
        for prog in benign_corpus() {
            let report = analyzer.analyze(&prog);
            assert!(
                !report.detected_at(Severity::Warning),
                "{}: unexpected finding(s): {report}",
                prog.name
            );
        }
    }

    #[test]
    fn baseline_is_also_quiet() {
        let baseline = BaselineChecker::new();
        for prog in benign_corpus() {
            assert!(!baseline.analyze(&prog).detected(), "{}: baseline false positive", prog.name);
        }
    }
}
