//! Seeded workload generators.
//!
//! Everything here is deterministic in the seed, so experiments and
//! benches are exactly reproducible. The generators cover:
//!
//! * attacker input scripts (fuzz the `ssn[]` word values);
//! * student populations (for allocation-pressure benches);
//! * random *safe* and *vulnerable* IR programs, used by property tests
//!   to probe detector soundness (safe programs must stay below Warning)
//!   and sensitivity (each generated vulnerable program must be flagged).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pnew_detector::{CmpOp, Expr, Program, ProgramBuilder, Ty};

use crate::listings::student_sizes;

/// A generated attacker script: three `ssn` words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsnScript {
    /// The three values fed to `cin`.
    pub words: [i64; 3],
}

/// Generates `count` random ssn scripts (values span negative, zero and
/// positive, so the `dssn > 0` guard is exercised in every combination).
pub fn ssn_scripts(seed: u64, count: usize) -> Vec<SsnScript> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| SsnScript {
            words: [
                rng.gen_range(-1000..1_000_000),
                rng.gen_range(-1000..1_000_000),
                rng.gen_range(-1000..1_000_000),
            ],
        })
        .collect()
}

/// One synthetic student record.
#[derive(Debug, Clone, PartialEq)]
pub struct StudentRecord {
    /// GPA in `[0, 4]`.
    pub gpa: f64,
    /// Enrollment year.
    pub year: i32,
    /// Semester.
    pub semester: i32,
    /// Whether the record is a graduate student (has an SSN).
    pub grad: bool,
    /// SSN words for graduate students.
    pub ssn: [i32; 3],
}

/// Generates a deterministic student population.
pub fn student_population(seed: u64, count: usize) -> Vec<StudentRecord> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5757_5757);
    (0..count)
        .map(|_| {
            let grad = rng.gen_bool(0.4);
            StudentRecord {
                gpa: f64::from(rng.gen_range(0..=400)) / 100.0,
                year: rng.gen_range(1990..=2011),
                semester: rng.gen_range(1..=2),
                grad,
                ssn: if grad {
                    [rng.gen_range(100..999), rng.gen_range(10..99), rng.gen_range(1000..9999)]
                } else {
                    [0; 3]
                },
            }
        })
        .collect()
}

/// Generates a random **safe** program: every placement provably fits its
/// arena, every copy is bounded, reuse is sanitized. The detector must not
/// report anything at `Warning` severity or above.
pub fn random_safe_program(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbe9a_11fe);
    let sizes = student_sizes(false);
    let mut p = ProgramBuilder::new(&format!("gen-safe-{seed}"));
    p.class("Student", sizes.student, None, false);
    p.class("GradStudent", sizes.grad, Some("Student"), false);

    let n_pools = rng.gen_range(1..4usize);
    let pools: Vec<_> = (0..n_pools)
        .map(|i| {
            let size = rng.gen_range(sizes.grad..256);
            (p.global(&format!("pool{i}"), Ty::CharArray(Some(size))), size)
        })
        .collect();

    let mut f = p.function("main");
    let n_ops = rng.gen_range(1..8usize);
    for i in 0..n_ops {
        let (pool, pool_size) = pools[rng.gen_range(0..pools.len())];
        match rng.gen_range(0..4u8) {
            0 => {
                let v = f.local(&format!("obj{i}"), Ty::Ptr);
                let class = if rng.gen_bool(0.5) { "Student" } else { "GradStudent" };
                f.placement_new(v, Expr::addr_of(pool), class);
            }
            1 => {
                let v = f.local(&format!("arr{i}"), Ty::Ptr);
                let len = rng.gen_range(1..=pool_size);
                f.placement_new_array(v, Expr::addr_of(pool), 1, Expr::Const(i64::from(len)));
            }
            2 => {
                let v = f.local(&format!("buf{i}"), Ty::Ptr);
                let len = rng.gen_range(1..=pool_size);
                f.placement_new_array(v, Expr::addr_of(pool), 1, Expr::Const(i64::from(len)));
                let src = f.local(&format!("src{i}"), Ty::Ptr);
                f.strncpy(v, Expr::Var(src), Expr::Const(i64::from(len)));
            }
            _ => {
                // Sanitized reuse.
                let v = f.local(&format!("reuse{i}"), Ty::Ptr);
                f.read_secret(pool);
                f.memset(pool, Expr::Const(i64::from(pool_size)));
                f.placement_new_array(v, Expr::addr_of(pool), 1, Expr::Const(1));
                f.output(v);
            }
        }
    }
    f.finish();
    p.build()
}

/// Generates a random **vulnerable** program containing at least one
/// seeded placement-new defect; the detector must flag it at `Warning` or
/// above.
pub fn random_vulnerable_program(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0bad_cafe);
    let sizes = student_sizes(false);
    let mut p = ProgramBuilder::new(&format!("gen-vuln-{seed}"));
    p.class("Student", sizes.student, None, false);
    p.class("GradStudent", sizes.grad, Some("Student"), false);

    let mut f = p.function("main");
    match rng.gen_range(0..4u8) {
        0 => {
            // Oversized object placement.
            let stud = f.local("stud", Ty::Class("Student".into()));
            let st = f.local("st", Ty::Ptr);
            f.placement_new(st, Expr::addr_of(stud), "GradStudent");
        }
        1 => {
            // Oversized constant array placement.
            let pool = f.local("pool", Ty::CharArray(Some(rng.gen_range(8..64))));
            let buf = f.local("buf", Ty::Ptr);
            f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Const(512));
        }
        2 => {
            // Tainted placement count.
            let pool = f.local("pool", Ty::CharArray(Some(64)));
            let n = f.local("n", Ty::Int);
            let buf = f.local("buf", Ty::Ptr);
            f.read_input(n);
            f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(n));
        }
        _ => {
            // Size-mismatched release.
            let stud = f.local("stud", Ty::Ptr);
            let st = f.local("st", Ty::Ptr);
            f.heap_new(stud, "GradStudent");
            f.placement_new(st, Expr::Var(stud), "Student");
            f.delete(st, Some("Student"));
        }
    }
    f.finish();
    p.build()
}

/// Generates a mixed batch of `count` programs — safe and vulnerable
/// shapes interleaved pseudo-randomly — sized for the batch analysis
/// engine and its throughput benches.
///
/// Deterministic in `(seed, count)`: the same arguments always yield the
/// same programs in the same order, so batch scans over a regenerated
/// corpus hit the content-fingerprint cache.
pub fn corpus(seed: u64, count: usize) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00c0_7b05);
    (0..count)
        .map(|i| {
            let sub = rng.gen::<u64>().wrapping_add(i as u64);
            if rng.gen_bool(0.5) {
                random_vulnerable_program(sub)
            } else {
                random_safe_program(sub)
            }
        })
        .collect()
}

/// Layers in the deep call-graph shapes ([`deep_call_corpus`],
/// [`fan_in_call_corpus`]): every generated program has an
/// interprocedural chain at least this deep.
pub const CALL_DEPTH: usize = 16;
/// Functions per layer, and the fan-in on each program's shared sink.
pub const CALL_WIDTH: usize = 8;

/// Generates a corpus of **deep, wide call-graph** programs: a lattice
/// of [`CALL_DEPTH`] layers × [`CALL_WIDTH`] functions, each calling two
/// functions in the next layer, all funneling into one shared sink with
/// fan-in [`CALL_WIDTH`]. The path count from `main` to the sink is
/// `CALL_WIDTH × 2^(CALL_DEPTH-1)` (≈ 262 000), so an analyzer that
/// re-walks callees inline does exponential work while a summary-based
/// one computes each function once per abstract context — this is the
/// workload behind the summary-vs-inline benches.
///
/// Odd seeds taint the sink's placement count (every program is flagged
/// `tainted-placement-count` through the full chain); even seeds bound
/// it (the program is clean). Deterministic in `(seed, count)`.
pub fn deep_call_corpus(seed: u64, count: usize) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0dee_9ca1);
    (0..count).map(|i| deep_call_program(rng.gen::<u64>().wrapping_add(i as u64))).collect()
}

fn deep_call_program(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1a77_1ce5);
    let pool_size = rng.gen_range(64..256u32);
    let vulnerable = seed % 2 == 1;
    let mut p = ProgramBuilder::new(&format!("gen-deep-{seed}"));
    let pool = p.global("pool", Ty::CharArray(Some(pool_size)));

    // main taints the count and fans out into the whole first layer.
    let mut f = p.function("main");
    let n = f.local("n", Ty::Int);
    f.read_input(n);
    for w in 0..CALL_WIDTH {
        f.call(&format!("f_0_{w}"), vec![Expr::Var(n)]);
    }
    f.finish();

    // Interior layers: f_{l,w} forwards to two layer-(l+1) functions, so
    // every node is reachable along many paths but the abstract context
    // (one tainted int, one untouched pool) is identical on all of them.
    for l in 0..CALL_DEPTH {
        for w in 0..CALL_WIDTH {
            let mut f = p.function(&format!("f_{l}_{w}"));
            let n = f.param("n", Ty::Int, false);
            let t = f.local("t", Ty::Int);
            f.assign(t, Expr::Var(n));
            if l + 1 == CALL_DEPTH {
                f.call("leaf_work", vec![Expr::Var(t)]);
            } else {
                f.call(&format!("f_{}_{w}", l + 1), vec![Expr::Var(t)]);
                f.call(&format!("f_{}_{}", l + 1, (w + 1) % CALL_WIDTH), vec![Expr::Var(t)]);
            }
            f.finish();
        }
    }

    // The shared sink: fan-in CALL_WIDTH from the last layer.
    let mut f = p.function("leaf_work");
    let n = f.param("n", Ty::Int, false);
    let buf = f.local("buf", Ty::Ptr);
    if vulnerable {
        f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(n));
    } else {
        let fit = i64::from(rng.gen_range(1..=pool_size / 2));
        f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Const(fit));
    }
    f.finish();
    p.build()
}

/// Generates a corpus of **fan-in-heavy** programs: a call chain of
/// [`CALL_DEPTH`] functions ending in a placement, with [`CALL_WIDTH`]
/// distinct callers entering the chain at every level (fan-in ≥
/// [`CALL_WIDTH`] on each chain function). Summary memoization pays off
/// across *call sites* here — every entry point replays the same chain
/// summaries — rather than across paths as in [`deep_call_corpus`].
///
/// Odd seeds are vulnerable (tainted count at the chain's end), even
/// seeds clean. Deterministic in `(seed, count)`.
pub fn fan_in_call_corpus(seed: u64, count: usize) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00fa_9199);
    (0..count).map(|i| fan_in_program(rng.gen::<u64>().wrapping_add(i as u64))).collect()
}

fn fan_in_program(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5107_fa91);
    let pool_size = rng.gen_range(64..256u32);
    let vulnerable = seed % 2 == 1;
    let mut p = ProgramBuilder::new(&format!("gen-fanin-{seed}"));
    let pool = p.global("pool", Ty::CharArray(Some(pool_size)));

    // main taints the count and enters through every caller.
    let mut f = p.function("main");
    let n = f.local("n", Ty::Int);
    f.read_input(n);
    for l in 0..CALL_DEPTH {
        for w in 0..CALL_WIDTH {
            f.call(&format!("h_{l}_{w}"), vec![Expr::Var(n)]);
        }
    }
    f.finish();

    // The chain: g_l -> g_{l+1} -> … -> placement.
    for l in 0..CALL_DEPTH {
        let mut f = p.function(&format!("g_{l}"));
        let n = f.param("n", Ty::Int, false);
        if l + 1 == CALL_DEPTH {
            let buf = f.local("buf", Ty::Ptr);
            if vulnerable {
                f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(n));
            } else {
                let fit = i64::from(rng.gen_range(1..=pool_size / 2));
                f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Const(fit));
            }
        } else {
            f.call(&format!("g_{}", l + 1), vec![Expr::Var(n)]);
        }
        f.finish();
    }

    // CALL_WIDTH callers per level: h_{l,w} enters the chain at g_l.
    for l in 0..CALL_DEPTH {
        for w in 0..CALL_WIDTH {
            let mut f = p.function(&format!("h_{l}_{w}"));
            let n = f.param("n", Ty::Int, false);
            f.call(&format!("g_{l}"), vec![Expr::Var(n)]);
            f.finish();
        }
    }
    p.build()
}

/// Generates `count` seeded attacker input scripts for the execution
/// oracle: each script is eight `cin` values mixing benign counts (fit
/// any generated arena), hostile counts (overflow every generated
/// arena), and edge values (zero, negative). The oracle unions events
/// across scripts, so one hostile value anywhere is enough to confirm
/// an input-driven site.
pub fn attack_inputs(seed: u64, count: usize) -> Vec<Vec<i64>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa77a_c4ed);
    (0..count)
        .map(|_| {
            (0..8)
                .map(|_| match rng.gen_range(0..4u8) {
                    0 => rng.gen_range(1..8i64),
                    1 => rng.gen_range(300..4096i64),
                    2 => 0,
                    _ => -rng.gen_range(1..100i64),
                })
                .collect()
        })
        .collect()
}

/// Generates a random **guarded** program: the placement count is
/// tainted, but a bounds check keeps every execution inside the arena.
/// Runtime-safe by construction — the execution oracle must observe no
/// event — while the analyzer may or may not warn depending on how well
/// it models the guard. Any warning here lands in the false-positive
/// column of the differential matrix, never the false-negative one.
pub fn random_guarded_program(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6a4d_ed00);
    let pool_size = rng.gen_range(32..128u32);
    let bound = i64::from(rng.gen_range(1..=pool_size / 4));
    let mut p = ProgramBuilder::new(&format!("gen-guarded-{seed}"));
    let pool = p.global("pool", Ty::CharArray(Some(pool_size)));
    let mut f = p.function("main");
    let n = f.local("n", Ty::Int);
    let buf = f.local("buf", Ty::Ptr);
    f.read_input(n);
    f.if_start(Expr::Var(n), pnew_detector::CmpOp::Gt, Expr::Const(bound));
    f.ret();
    f.end_if();
    f.if_start(Expr::Var(n), pnew_detector::CmpOp::Lt, Expr::Const(0));
    f.ret();
    f.end_if();
    f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(n));
    f.finish();
    p.build()
}

/// One guarded-corpus case: a program whose placement length is
/// tainted but (mostly) bounded, plus the probe input scripts that make
/// every runtime-reachable overflow at its bounds concretely
/// observable. The loose bounds this generator picks sit *below*
/// [`attack_inputs`]' hostile range (300+), so judging these shapes
/// honestly requires the per-case probes, not the generic scripts.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedCase {
    /// The generated program.
    pub program: Program,
    /// Input scripts tailored to the case's own bounds: values inside
    /// the guard, at its edge, and past it.
    pub probes: Vec<Vec<i64>>,
    /// Whether some probe really overflows at runtime (loose guards,
    /// and the clobber site of guard-then-clobber shapes). Such cases
    /// must land in the true-positive column; every other case must
    /// produce no event at all.
    pub runtime_vulnerable: bool,
}

/// Shape labels for [`guarded_corpus`], embedded in program names
/// (`gen-guardcase-<label>-<seed>`) so differential tests can reason
/// about per-shape expectations.
pub const GUARDED_SHAPES: [&str; 7] = [
    "tight",       // `if (n > bound) return;` — straight operand order
    "reversed",    // `if (bound+1 > n) { place }` — reversed operands
    "loose",       // guard admits totals past the arena end
    "clobber",     // an oversized placement precedes the guarded one
    "loop",        // the bound is established by a clamp loop's test
    "subtraction", // the placed length is `n - lo` under a two-sided guard
    "negative",    // the guard proves the count non-positive
];

/// Generates the **guarded corpus**: `count` programs cycling through
/// [`GUARDED_SHAPES`], every placement length tainted and guarded in a
/// different style. All shapes except `loose` and the `clobber` site are
/// runtime-safe by construction, so any Warning+ the analyzer reports
/// there is a false positive — the corpus exists to measure exactly how
/// many guard styles the analyzer's value-range reasoning understands.
/// Deterministic in `(seed, count)`.
pub fn guarded_corpus(seed: u64, count: usize) -> Vec<GuardedCase> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6a4d_ca5e);
    (0..count)
        .map(|i| {
            let sub = rng.gen::<u64>().wrapping_add(i as u64);
            guarded_case(GUARDED_SHAPES[i % GUARDED_SHAPES.len()], sub)
        })
        .collect()
}

/// Builds one guarded case of the named shape. Pool sizes stay in
/// 32..128 and loose bounds at most double the pool, so every number
/// the guards compare against is far below the 300+ hostile values of
/// [`attack_inputs`].
fn guarded_case(shape: &str, seed: u64) -> GuardedCase {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9ded_5eed);
    let pool_size = rng.gen_range(32..128u32);
    let bound = i64::from(rng.gen_range(1..=pool_size / 4));
    let mut p = ProgramBuilder::new(&format!("gen-guardcase-{shape}-{seed}"));
    let pool = p.global("pool", Ty::CharArray(Some(pool_size)));
    let mut f = p.function("main");
    let n = f.local("n", Ty::Int);
    let buf = f.local("buf", Ty::Ptr);
    f.read_input(n);
    let (probes, runtime_vulnerable) = match shape {
        "tight" => {
            f.if_start(Expr::Var(n), CmpOp::Gt, Expr::Const(bound));
            f.ret();
            f.end_if();
            f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(n));
            (vec![vec![1], vec![bound], vec![bound + i64::from(pool_size)]], false)
        }
        "reversed" => {
            // The guard constant on the *left*: `if (bound+1 > n)`.
            f.if_start(Expr::Const(bound + 1), CmpOp::Gt, Expr::Var(n));
            f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(n));
            f.end_if();
            (vec![vec![1], vec![bound], vec![-3], vec![bound + i64::from(pool_size)]], false)
        }
        "loose" => {
            // The guard admits up to `loose` elements, past the arena
            // end: a real, attacker-reachable overflow window whose
            // worst case the analyzer can measure exactly.
            let loose = i64::from(pool_size) + i64::from(rng.gen_range(1..=pool_size));
            f.if_start(Expr::Var(n), CmpOp::Gt, Expr::Const(loose));
            f.ret();
            f.end_if();
            f.if_start(Expr::Var(n), CmpOp::Lt, Expr::Const(0));
            f.ret();
            f.end_if();
            f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(n));
            (vec![vec![1], vec![loose]], true)
        }
        "clobber" => {
            // §4 two-step: the oversized placement before the guarded
            // one can rewrite the checked variable, so the analyzer
            // must keep warning (its Warning at the guarded site is a
            // deliberate, principled false positive in the matrix —
            // the simulated machine does not model the rewrite).
            let pool2 = f.local("pool2", Ty::CharArray(Some(pool_size)));
            let big = f.local("big", Ty::Ptr);
            f.if_start(Expr::Var(n), CmpOp::Gt, Expr::Const(bound));
            f.ret();
            f.end_if();
            f.placement_new_array(
                big,
                Expr::addr_of(pool2),
                1,
                Expr::Const(i64::from(pool_size) + 64),
            );
            f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(n));
            (vec![vec![1], vec![bound]], true)
        }
        "loop" => {
            // A clamp loop: the only thing bounding `n` at the
            // placement is the loop test having failed. Probes stay
            // within the executor's loop-iteration budget.
            f.while_start(Expr::Var(n), CmpOp::Gt, Expr::Const(bound));
            f.assign(n, Expr::sub(Expr::Var(n), Expr::Const(1)));
            f.end_while();
            f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(n));
            (vec![vec![1], vec![bound + 48]], false)
        }
        "subtraction" => {
            // The placed length is derived by subtraction from the
            // guarded variable: `len = n - lo` under `lo ≤ n ≤ hi`.
            let lo = i64::from(rng.gen_range(1..=8u32));
            let hi = lo + bound;
            let len = f.local("len", Ty::Int);
            f.if_start(Expr::Var(n), CmpOp::Gt, Expr::Const(hi));
            f.ret();
            f.end_if();
            f.if_start(Expr::Var(n), CmpOp::Lt, Expr::Const(lo));
            f.ret();
            f.end_if();
            f.assign(len, Expr::sub(Expr::Var(n), Expr::Const(lo)));
            f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(len));
            (vec![vec![lo], vec![hi], vec![hi + i64::from(pool_size)]], false)
        }
        "negative" => {
            // The guard proves the count non-positive; the simulated
            // `new[]` clamps a negative count to zero, so nothing is
            // ever written.
            f.if_start(Expr::Var(n), CmpOp::Ge, Expr::Const(0));
            f.ret();
            f.end_if();
            f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(n));
            (vec![vec![-7], vec![-1], vec![3]], false)
        }
        other => unreachable!("unknown guarded shape {other}"),
    };
    f.finish();
    GuardedCase { program: p.build(), probes, runtime_vulnerable }
}

/// Generates a mixed **executable** corpus for the differential oracle:
/// safe, guarded, and vulnerable shapes interleaved pseudo-randomly.
/// Every shape is fully executable by the oracle's interpreter (the
/// input-driven ones trigger under [`attack_inputs`] scripts), so the
/// batch carries ground truth for all three matrix columns.
///
/// Deterministic in `(seed, count)`, like [`corpus`].
pub fn executable_corpus(seed: u64, count: usize) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0e1e_c0de);
    (0..count)
        .map(|i| {
            let sub = rng.gen::<u64>().wrapping_add(i as u64);
            match rng.gen_range(0..4u8) {
                0 | 1 => random_vulnerable_program(sub),
                2 => random_safe_program(sub),
                _ => random_guarded_program(sub),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnew_detector::{Analyzer, Severity};

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(ssn_scripts(7, 5), ssn_scripts(7, 5));
        assert_ne!(ssn_scripts(7, 5), ssn_scripts(8, 5));
        assert_eq!(student_population(3, 10), student_population(3, 10));
        assert_eq!(random_safe_program(1), random_safe_program(1));
        assert_eq!(random_vulnerable_program(1), random_vulnerable_program(1));
        assert_eq!(corpus(5, 12), corpus(5, 12));
        assert_ne!(corpus(5, 12), corpus(6, 12));
    }

    #[test]
    fn corpus_mixes_safe_and_vulnerable() {
        let batch = corpus(42, 40);
        assert_eq!(batch.len(), 40);
        let vulns = batch.iter().filter(|p| p.name.starts_with("gen-vuln-")).count();
        assert!(vulns > 0 && vulns < 40, "one-sided mix: {vulns}/40");
    }

    #[test]
    fn population_respects_invariants() {
        for s in student_population(11, 200) {
            assert!((0.0..=4.0).contains(&s.gpa));
            assert!((1990..=2011).contains(&s.year));
            if !s.grad {
                assert_eq!(s.ssn, [0; 3]);
            }
        }
    }

    #[test]
    fn safe_programs_stay_quiet_across_seeds() {
        let analyzer = Analyzer::new();
        for seed in 0..50 {
            let prog = random_safe_program(seed);
            let report = analyzer.analyze(&prog);
            assert!(
                !report.detected_at(Severity::Warning),
                "seed {seed}: false positive: {report}"
            );
        }
    }

    #[test]
    fn vulnerable_programs_are_flagged_across_seeds() {
        let analyzer = Analyzer::new();
        for seed in 0..50 {
            let prog = random_vulnerable_program(seed);
            let report = analyzer.analyze(&prog);
            assert!(
                report.detected_at(Severity::Warning),
                "seed {seed}: missed defect in {}",
                prog.name
            );
        }
    }

    #[test]
    fn attack_inputs_are_deterministic_and_carry_hostile_values() {
        assert_eq!(attack_inputs(9, 4), attack_inputs(9, 4));
        assert_ne!(attack_inputs(9, 4), attack_inputs(10, 4));
        let scripts = attack_inputs(9, 16);
        assert_eq!(scripts.len(), 16);
        assert!(scripts.iter().all(|s| s.len() == 8));
        assert!(scripts.iter().flatten().any(|&v| v >= 300), "no hostile count in any script");
        assert!(scripts.iter().flatten().any(|&v| v <= 0), "no edge value in any script");
    }

    #[test]
    fn deep_call_programs_have_the_advertised_shape() {
        let batch = deep_call_corpus(3, 2);
        assert_eq!(batch, deep_call_corpus(3, 2));
        for program in &batch {
            // main + the lattice + the shared sink.
            assert_eq!(program.functions.len(), 1 + CALL_DEPTH * CALL_WIDTH + 1);
            let leaf_callers = program
                .functions
                .iter()
                .filter(|f| {
                    f.body.iter().any(
                        |s| matches!(s, pnew_detector::Stmt::Call { func, .. } if func == "leaf_work"),
                    )
                })
                .count();
            assert_eq!(leaf_callers, CALL_WIDTH, "sink fan-in");
        }
    }

    #[test]
    fn deep_and_fan_in_verdicts_follow_the_seed_parity() {
        let analyzer = Analyzer::new();
        for corpus in [deep_call_corpus(41, 4), fan_in_call_corpus(41, 4)] {
            let mut flagged = 0;
            for program in &corpus {
                if analyzer.analyze(program).detected_at(Severity::Warning) {
                    flagged += 1;
                }
            }
            assert!(
                flagged > 0 && flagged < corpus.len(),
                "expected a mix of clean and vulnerable programs, got {flagged}/{}",
                corpus.len()
            );
        }
    }

    #[test]
    fn executable_corpus_mixes_all_three_shapes() {
        let batch = executable_corpus(17, 60);
        assert_eq!(batch.len(), 60);
        assert_eq!(batch, executable_corpus(17, 60));
        for prefix in ["gen-vuln-", "gen-safe-", "gen-guarded-"] {
            assert!(
                batch.iter().any(|p| p.name.starts_with(prefix)),
                "no {prefix} program in the mix"
            );
        }
    }

    #[test]
    fn guarded_corpus_is_deterministic_and_covers_every_shape() {
        let batch = guarded_corpus(23, 21);
        assert_eq!(batch.len(), 21);
        assert_eq!(batch, guarded_corpus(23, 21));
        assert_ne!(batch, guarded_corpus(24, 21));
        for shape in GUARDED_SHAPES {
            let marker = format!("gen-guardcase-{shape}-");
            assert!(
                batch.iter().any(|c| c.program.name.starts_with(&marker)),
                "no {shape} case generated"
            );
        }
        assert!(batch.iter().all(|c| !c.probes.is_empty()), "a case shipped without probes");
    }

    #[test]
    fn guarded_corpus_flags_exactly_the_vulnerable_shapes() {
        // `loose` and `clobber` cases are runtime-vulnerable and must be
        // flagged; the analyzer may additionally warn on other shapes
        // (that is what the precision experiment measures), but it must
        // never go quiet on a real overflow.
        let analyzer = Analyzer::new();
        for case in guarded_corpus(31, 28) {
            if case.runtime_vulnerable {
                assert!(
                    analyzer.analyze(&case.program).detected_at(Severity::Warning),
                    "missed runtime-vulnerable case {}",
                    case.program.name
                );
            }
        }
    }
}
