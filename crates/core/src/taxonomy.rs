//! Classification of the attacks under the buffer-overflow taxonomy the
//! paper aligns itself with (§6).
//!
//! §6 cites Bishop et al.'s precondition framework: *executable* buffer
//! overflows ("an attacker is able to place some instructions in memory
//! and get them executed in the control flow of the process") versus
//! *data* buffer overflows, and notes that "the overflow schemes using
//! placement new that we have presented in this paper support such
//! preconditions". This module makes that support explicit: every
//! [`AttackKind`] is classified by overflow class, target memory region,
//! corruption target, and the preconditions it needs, and the
//! classification is queryable (used by the experiment report and tested
//! for consistency with the runtime behaviour).

use std::fmt;

use crate::report::AttackKind;

/// Bishop-style top-level overflow class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverflowClass {
    /// Control flow is (or can be) diverted to attacker-chosen code.
    Executable,
    /// Only data is corrupted or disclosed; control flow stays intact.
    Data,
    /// No overflow at all — resource-lifecycle abuse (the §4.5 leak).
    Resource,
}

impl fmt::Display for OverflowClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverflowClass::Executable => f.write_str("executable"),
            OverflowClass::Data => f.write_str("data"),
            OverflowClass::Resource => f.write_str("resource"),
        }
    }
}

/// Memory region the overflow lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetRegion {
    /// The call stack.
    Stack,
    /// The heap.
    Heap,
    /// Initialized or uninitialized globals (data/bss).
    DataBss,
}

impl fmt::Display for TargetRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetRegion::Stack => f.write_str("stack"),
            TargetRegion::Heap => f.write_str("heap"),
            TargetRegion::DataBss => f.write_str("data/bss"),
        }
    }
}

/// What the overflow corrupts or abuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptionTarget {
    /// The saved return address.
    ReturnAddress,
    /// A plain variable (loop bound, counter, flag).
    Variable,
    /// Member variables of a neighbouring object.
    ObjectState,
    /// A vtable pointer.
    VTablePointer,
    /// A function pointer.
    FunctionPointer,
    /// A data pointer.
    DataPointer,
    /// Nothing is corrupted; stale bytes are *disclosed*.
    Disclosure,
    /// Allocator state (stranded blocks).
    AllocatorState,
}

impl fmt::Display for CorruptionTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CorruptionTarget::ReturnAddress => "return address",
            CorruptionTarget::Variable => "variable",
            CorruptionTarget::ObjectState => "object state",
            CorruptionTarget::VTablePointer => "vtable pointer",
            CorruptionTarget::FunctionPointer => "function pointer",
            CorruptionTarget::DataPointer => "data pointer",
            CorruptionTarget::Disclosure => "disclosure",
            CorruptionTarget::AllocatorState => "allocator state",
        };
        f.write_str(s)
    }
}

/// Preconditions an attack needs, in the spirit of the Bishop et al.
/// framework cited in §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Preconditions {
    /// A placement-new call site with no size check (every attack in the
    /// paper needs this one — it *is* the new class).
    pub unchecked_placement: bool,
    /// Attacker influence over the values written through the placed
    /// object (`cin`, serialized objects).
    pub attacker_values: bool,
    /// A second, traditional copy step (the §4 two-step methodology).
    pub two_step: bool,
    /// An executable region for injected code (defeated by NX).
    pub executable_region: bool,
    /// Reuse of an arena without sanitization.
    pub unsanitized_reuse: bool,
}

/// Full classification of one attack kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    /// The attack.
    pub kind: AttackKind,
    /// Executable vs data vs resource.
    pub class: OverflowClass,
    /// Where the overflow lands.
    pub region: TargetRegion,
    /// What it corrupts.
    pub target: CorruptionTarget,
    /// What it needs.
    pub preconditions: Preconditions,
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} overflow on the {} corrupting {}",
            self.kind, self.class, self.region, self.target
        )
    }
}

/// Classifies an attack kind.
pub fn classify(kind: AttackKind) -> Classification {
    use AttackKind as K;
    use CorruptionTarget as T;
    use OverflowClass as C;
    use TargetRegion as R;

    let base = Preconditions {
        unchecked_placement: true,
        attacker_values: true,
        two_step: false,
        executable_region: false,
        unsanitized_reuse: false,
    };
    let (class, region, target, preconditions) = match kind {
        K::BssOverflow => (C::Data, R::DataBss, T::ObjectState, base),
        K::InternalOverflow => (C::Data, R::DataBss, T::ObjectState, base),
        K::HeapOverflow => (C::Data, R::Heap, T::ObjectState, base),
        K::StackSmash | K::CanaryBypass => (C::Executable, R::Stack, T::ReturnAddress, base),
        K::ArcInjection => (C::Executable, R::Stack, T::ReturnAddress, base),
        K::CodeInjection => (
            C::Executable,
            R::Stack,
            T::ReturnAddress,
            Preconditions { executable_region: true, ..base },
        ),
        K::GlobalVarMod => (C::Data, R::DataBss, T::Variable, base),
        K::StackLocalMod => (C::Data, R::Stack, T::Variable, base),
        K::MemberVarMod => (C::Data, R::Stack, T::ObjectState, base),
        K::VptrSubterfuge => (C::Executable, R::DataBss, T::VTablePointer, base),
        K::FnPtrSubterfuge => (C::Executable, R::Stack, T::FunctionPointer, base),
        K::VarPtrSubterfuge => (C::Data, R::DataBss, T::DataPointer, base),
        K::ArrayTwoStepStack => {
            (C::Executable, R::Stack, T::ReturnAddress, Preconditions { two_step: true, ..base })
        }
        K::ArrayTwoStepBss => {
            (C::Data, R::DataBss, T::Variable, Preconditions { two_step: true, ..base })
        }
        K::InfoLeakArray | K::InfoLeakObject => (
            C::Data,
            if kind == K::InfoLeakObject { R::Heap } else { R::DataBss },
            T::Disclosure,
            Preconditions { unsanitized_reuse: true, attacker_values: false, ..base },
        ),
        K::DosLoop => (C::Data, R::Stack, T::Variable, base),
        K::MemoryLeak => (
            C::Resource,
            R::Heap,
            T::AllocatorState,
            Preconditions { attacker_values: false, ..base },
        ),
    };
    Classification { kind, class, region, target, preconditions }
}

/// The full classification table, in experiment order.
pub fn classification_table() -> Vec<Classification> {
    AttackKind::ALL.iter().map(|&k| classify(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_is_classified() {
        let table = classification_table();
        assert_eq!(table.len(), AttackKind::ALL.len());
        for c in &table {
            // §1: every attack in the paper rides the unchecked placement.
            assert!(c.preconditions.unchecked_placement, "{}", c.kind);
        }
    }

    #[test]
    fn executable_class_matches_hijacking_attacks() {
        for c in classification_table() {
            let hijacks = matches!(
                c.kind,
                AttackKind::StackSmash
                    | AttackKind::CanaryBypass
                    | AttackKind::ArcInjection
                    | AttackKind::CodeInjection
                    | AttackKind::VptrSubterfuge
                    | AttackKind::FnPtrSubterfuge
                    | AttackKind::ArrayTwoStepStack
            );
            assert_eq!(c.class == OverflowClass::Executable, hijacks, "{} misclassified", c.kind);
        }
    }

    #[test]
    fn only_code_injection_needs_an_executable_region() {
        for c in classification_table() {
            assert_eq!(
                c.preconditions.executable_region,
                c.kind == AttackKind::CodeInjection,
                "{}",
                c.kind
            );
        }
    }

    #[test]
    fn two_step_flags_match_section_4() {
        for c in classification_table() {
            let two_step =
                matches!(c.kind, AttackKind::ArrayTwoStepStack | AttackKind::ArrayTwoStepBss);
            assert_eq!(c.preconditions.two_step, two_step, "{}", c.kind);
        }
    }

    #[test]
    fn leaks_need_reuse_not_values() {
        for kind in [AttackKind::InfoLeakArray, AttackKind::InfoLeakObject] {
            let c = classify(kind);
            assert!(c.preconditions.unsanitized_reuse);
            assert!(!c.preconditions.attacker_values);
            assert_eq!(c.target, CorruptionTarget::Disclosure);
        }
    }

    #[test]
    fn classification_matches_runtime_behaviour() {
        // Cross-check against live runs: executable-class attacks produce
        // hijack/shellcode evidence; data-class attacks never do.
        use crate::attacks::catalogue;
        use crate::report::AttackConfig;
        use pnew_runtime::StackProtection;

        let mut cfg = AttackConfig::with_protection(StackProtection::None);
        cfg.executable_stack = true; // give every attack its best platform
        for (kind, run) in catalogue() {
            let report = run(&cfg).unwrap();
            if !report.succeeded {
                continue;
            }
            let c = classify(kind);
            let saw_control_transfer = report.evidence.iter().any(|e| {
                e.contains("control transferred")
                    || e.contains("hijacked")
                    || e.contains("injected code executed")
            });
            match c.class {
                OverflowClass::Executable => assert!(
                    saw_control_transfer,
                    "{kind}: executable class but no control-transfer evidence: {report}"
                ),
                OverflowClass::Data | OverflowClass::Resource => assert!(
                    !saw_control_transfer,
                    "{kind}: data/resource class but control was transferred: {report}"
                ),
            }
        }
    }

    #[test]
    fn displays() {
        let c = classify(AttackKind::StackSmash);
        let text = c.to_string();
        assert!(text.contains("executable overflow on the stack"));
        assert_eq!(OverflowClass::Resource.to_string(), "resource");
        assert_eq!(TargetRegion::DataBss.to_string(), "data/bss");
        assert_eq!(CorruptionTarget::VTablePointer.to_string(), "vtable pointer");
    }
}
