//! Protection techniques from §5 of the paper.
//!
//! §5.1 (modifiable software, "correct coding"):
//! * size-checked placement at every call site, with a heap fallback —
//!   [`checked_placement_new`] / [`place_or_heap`];
//! * memory sanitization before arena reuse — [`ManagedArena`];
//! * placement delete / pool discipline against leaks —
//!   [`placement_delete`] / [`PlacementPool`].
//!
//! §5.2 (legacy software):
//! * a libsafe-style library interceptor that bounds-checks placement
//!   calls from metadata it can recover (heap blocks, globals) and is
//!   honestly blind where no metadata exists (stack locals) —
//!   [`intercepted_placement_new`];
//! * the return-address (shadow) stack is a machine-level switch:
//!   [`pnew_runtime::MachineBuilder::shadow_stack`];
//! * gcc StackGuard is likewise machine-level:
//!   [`pnew_runtime::StackProtection::StackGuard`].

mod checked;
mod intercept;
mod pool;
mod sanitize;

pub use checked::{checked_placement_new, checked_placement_new_array, place_or_heap};
pub use intercept::{intercepted_placement_new, intercepted_placement_new_array};
pub use pool::{placement_delete, PlacementPool};
pub use sanitize::{sanitize_fields_only, ManagedArena};

use std::error::Error;
use std::fmt;

use pnew_memory::VirtAddr;
use pnew_object::{ClassId, CxxType};
use pnew_runtime::{Machine, RuntimeError};

use crate::placement::{ArrayRef, ObjRef};

/// A memory arena a program intends to place into: the address plus the
/// size the *program* knows it has (`sizeof` of the old object, the
/// declared pool length, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arena {
    /// Base address of the arena.
    pub addr: VirtAddr,
    /// The arena size known at the call site, in bytes.
    pub size: u32,
}

impl Arena {
    /// Creates an arena descriptor.
    pub fn new(addr: VirtAddr, size: u32) -> Self {
        Arena { addr, size }
    }
}

impl fmt::Display for Arena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}; {} bytes]", self.addr, self.size)
    }
}

/// Why a defended placement call site refused the operation.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// The object/array being placed is larger than the arena — the §5.1
    /// check that the vulnerable listings omit.
    SizeExceedsArena {
        /// Bytes the placement needs.
        placed: u32,
        /// Bytes the arena has.
        arena: u32,
    },
    /// The arena address does not satisfy the placed type's alignment
    /// (§2 issue 2).
    Misaligned {
        /// The arena address.
        addr: VirtAddr,
        /// Alignment the type requires.
        required: u32,
    },
    /// An underlying runtime failure (null address, memory fault, heap
    /// exhaustion in the fallback).
    Runtime(RuntimeError),
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::SizeExceedsArena { placed, arena } => {
                write!(f, "placement of {placed} bytes exceeds the {arena}-byte arena")
            }
            PlacementError::Misaligned { addr, required } => {
                write!(f, "arena {addr} violates the required {required}-byte alignment")
            }
            PlacementError::Runtime(e) => write!(f, "placement failed: {e}"),
        }
    }
}

impl Error for PlacementError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlacementError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for PlacementError {
    fn from(e: RuntimeError) -> Self {
        PlacementError::Runtime(e)
    }
}

/// How placement call sites behave in the victim program — the axis of
/// the protection-matrix experiment (E20).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementMode {
    /// The paper's vulnerable call sites: raw placement new.
    #[default]
    Unchecked,
    /// §5.1 correct coding: every site checks `sizeof` against the arena.
    Checked,
    /// §5.2 library interception: checks only where metadata exists.
    Intercepted,
}

impl PlacementMode {
    /// Places an object under this mode.
    ///
    /// # Errors
    ///
    /// [`Unchecked`](Self::Unchecked) fails only on runtime faults; the
    /// defended modes also fail with [`PlacementError::SizeExceedsArena`] /
    /// [`PlacementError::Misaligned`] when their checks fire.
    pub fn place_object(
        self,
        machine: &mut Machine,
        arena: Arena,
        class: ClassId,
    ) -> Result<ObjRef, PlacementError> {
        match self {
            PlacementMode::Unchecked => {
                Ok(crate::placement::placement_new(machine, arena.addr, class)?)
            }
            PlacementMode::Checked => checked_placement_new(machine, arena, class),
            PlacementMode::Intercepted => intercepted_placement_new(machine, arena.addr, class),
        }
    }

    /// Places a scalar array under this mode.
    ///
    /// # Errors
    ///
    /// Same conditions as [`place_object`](Self::place_object).
    pub fn place_array(
        self,
        machine: &mut Machine,
        arena: Arena,
        elem: CxxType,
        len: u32,
    ) -> Result<ArrayRef, PlacementError> {
        match self {
            PlacementMode::Unchecked => {
                Ok(crate::placement::placement_new_array(machine, arena.addr, elem, len)?)
            }
            PlacementMode::Checked => checked_placement_new_array(machine, arena, elem, len),
            PlacementMode::Intercepted => {
                intercepted_placement_new_array(machine, arena.addr, elem, len)
            }
        }
    }

    /// The defense name used in `blocked_by` fields and tables.
    pub fn defense_name(self) -> &'static str {
        match self {
            PlacementMode::Unchecked => "none",
            PlacementMode::Checked => "checked placement",
            PlacementMode::Intercepted => "library interceptor",
        }
    }
}

impl fmt::Display for PlacementMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementMode::Unchecked => f.write_str("unchecked"),
            PlacementMode::Checked => f.write_str("checked"),
            PlacementMode::Intercepted => f.write_str("intercepted"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::student::StudentWorld;
    use pnew_memory::SegmentKind;
    use pnew_runtime::VarDecl;

    #[test]
    fn mode_dispatch_unchecked_allows_overflow() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let stud =
            m.define_global("stud", VarDecl::Class(world.student), SegmentKind::Bss).unwrap();
        let arena = Arena::new(stud, 16);
        assert!(PlacementMode::Unchecked.place_object(&mut m, arena, world.grad).is_ok());
    }

    #[test]
    fn mode_dispatch_checked_blocks_overflow() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let stud =
            m.define_global("stud", VarDecl::Class(world.student), SegmentKind::Bss).unwrap();
        let arena = Arena::new(stud, 16);
        let err = PlacementMode::Checked.place_object(&mut m, arena, world.grad).unwrap_err();
        assert_eq!(err, PlacementError::SizeExceedsArena { placed: 32, arena: 16 });
    }

    #[test]
    fn error_display_and_source() {
        let e = PlacementError::SizeExceedsArena { placed: 32, arena: 16 };
        assert!(e.to_string().contains("exceeds"));
        let e = PlacementError::Misaligned { addr: VirtAddr::new(3), required: 8 };
        assert!(e.to_string().contains("alignment"));
        let e = PlacementError::from(RuntimeError::NullPlacement);
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn names_and_labels() {
        assert_eq!(PlacementMode::Checked.defense_name(), "checked placement");
        assert_eq!(PlacementMode::Unchecked.to_string(), "unchecked");
        assert_eq!(PlacementMode::default(), PlacementMode::Unchecked);
        assert_eq!(Arena::new(VirtAddr::new(0x10), 16).to_string(), "[0x00000010; 16 bytes]");
    }
}
