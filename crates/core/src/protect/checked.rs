//! §5.1 "correct coding": size- and alignment-checked placement.
//!
//! > "At each point, where placement new is used, it has to be enforced
//! > that the size of the new object or array B being placed in a memory
//! > arena of another object/array A should never be larger than the
//! > object or array A. If the size checking fails, then the memory
//! > allocated to A should be freed, and the non-placement new expression
//! > should be used to create B. In order to determine the size of
//! > objects, `sizeof()` should be used."

use pnew_object::{ClassId, CxxType};
use pnew_runtime::Machine;

use crate::placement::{self, ArrayRef, ObjRef};
use crate::protect::{Arena, PlacementError};

/// Size/alignment-checked `new (arena) T()`.
///
/// Uses the simulated `sizeof()` ([`Machine::size_of`]), which includes
/// compiler-added members like the vptr — exactly why §5.1 tells
/// programmers not to estimate sizes by hand.
///
/// # Errors
///
/// Returns [`PlacementError::SizeExceedsArena`] when `sizeof(class)`
/// exceeds the arena, [`PlacementError::Misaligned`] when the arena base
/// violates the class alignment, and propagates runtime faults.
pub fn checked_placement_new(
    machine: &mut Machine,
    arena: Arena,
    class: ClassId,
) -> Result<ObjRef, PlacementError> {
    let layout = machine.layout(class)?;
    if layout.size() > arena.size {
        return Err(PlacementError::SizeExceedsArena { placed: layout.size(), arena: arena.size });
    }
    if !arena.addr.is_aligned(layout.align()) {
        return Err(PlacementError::Misaligned { addr: arena.addr, required: layout.align() });
    }
    Ok(placement::placement_new(machine, arena.addr, class)?)
}

/// Size/alignment-checked `new (arena) T[len]`.
///
/// # Errors
///
/// Same conditions as [`checked_placement_new`].
pub fn checked_placement_new_array(
    machine: &mut Machine,
    arena: Arena,
    elem: CxxType,
    len: u32,
) -> Result<ArrayRef, PlacementError> {
    let policy = machine.policy();
    let esize = elem.scalar_size(&policy).expect("scalar element");
    let ealign = elem.scalar_align(&policy).expect("scalar element");
    let total = esize
        .checked_mul(len)
        .ok_or(PlacementError::SizeExceedsArena { placed: u32::MAX, arena: arena.size })?;
    if total > arena.size {
        return Err(PlacementError::SizeExceedsArena { placed: total, arena: arena.size });
    }
    if !arena.addr.is_aligned(ealign) {
        return Err(PlacementError::Misaligned { addr: arena.addr, required: ealign });
    }
    Ok(placement::placement_new_array(machine, arena.addr, elem, len)?)
}

/// The full §5.1 recipe: try checked placement, and on a size failure fall
/// back to the non-placement `new` on the heap. Returns the object and
/// whether the fallback fired.
///
/// # Errors
///
/// Propagates alignment failures and runtime faults (including heap
/// exhaustion during the fallback).
pub fn place_or_heap(
    machine: &mut Machine,
    arena: Arena,
    class: ClassId,
) -> Result<(ObjRef, bool), PlacementError> {
    match checked_placement_new(machine, arena, class) {
        Ok(obj) => Ok((obj, false)),
        Err(PlacementError::SizeExceedsArena { .. }) => {
            let obj = placement::heap_new(machine, class)?;
            Ok((obj, true))
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::student::StudentWorld;
    use pnew_memory::SegmentKind;
    use pnew_runtime::VarDecl;

    fn bss_student(world: &StudentWorld, m: &mut Machine) -> Arena {
        let addr =
            m.define_global("stud", VarDecl::Class(world.student), SegmentKind::Bss).unwrap();
        Arena::new(addr, 16)
    }

    #[test]
    fn same_size_placement_is_allowed() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let arena = bss_student(&world, &mut m);
        let obj = checked_placement_new(&mut m, arena, world.student).unwrap();
        assert_eq!(obj.addr(), arena.addr);
    }

    #[test]
    fn oversized_placement_is_refused() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let arena = bss_student(&world, &mut m);
        let err = checked_placement_new(&mut m, arena, world.grad).unwrap_err();
        assert_eq!(err, PlacementError::SizeExceedsArena { placed: 32, arena: 16 });
    }

    #[test]
    fn sizeof_check_counts_the_vptr() {
        // A virtual Student (24 bytes) no longer fits a 16-byte arena even
        // though its *declared fields* would — the §5.1 sizeof() point.
        let world = StudentWorld::with_virtuals();
        let mut m = world.machine_default();
        let pool = m
            .define_global("pool", VarDecl::Buffer { size: 16, align: 8 }, SegmentKind::Bss)
            .unwrap();
        let err = checked_placement_new(&mut m, Arena::new(pool, 16), world.student).unwrap_err();
        assert_eq!(err, PlacementError::SizeExceedsArena { placed: 24, arena: 16 });
    }

    #[test]
    fn misalignment_is_refused() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let pool = m.define_global("pool", VarDecl::char_buf(64), SegmentKind::Bss).unwrap();
        // Student needs 8-byte alignment; pool+1 violates it.
        let err =
            checked_placement_new(&mut m, Arena::new(pool + 1, 32), world.student).unwrap_err();
        assert!(matches!(err, PlacementError::Misaligned { required: 8, .. }));
    }

    #[test]
    fn checked_array_placement() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let pool = m.define_global("pool", VarDecl::char_buf(64), SegmentKind::Bss).unwrap();
        let arena = Arena::new(pool, 64);
        assert!(checked_placement_new_array(&mut m, arena, CxxType::Char, 64).is_ok());
        let err = checked_placement_new_array(&mut m, arena, CxxType::Char, 65).unwrap_err();
        assert_eq!(err, PlacementError::SizeExceedsArena { placed: 65, arena: 64 });
        // Int array alignment check.
        let err = checked_placement_new_array(&mut m, Arena::new(pool + 2, 32), CxxType::Int, 4)
            .unwrap_err();
        assert!(matches!(err, PlacementError::Misaligned { required: 4, .. }));
    }

    #[test]
    fn array_length_overflow_is_caught() {
        // n * sizeof(elem) overflowing u32 must not wrap into a "fits".
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let pool = m.define_global("pool", VarDecl::char_buf(64), SegmentKind::Bss).unwrap();
        let err =
            checked_placement_new_array(&mut m, Arena::new(pool, 64), CxxType::Int, 0x4000_0001)
                .unwrap_err();
        assert!(matches!(err, PlacementError::SizeExceedsArena { .. }));
    }

    #[test]
    fn fallback_to_heap_on_size_failure() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let arena = bss_student(&world, &mut m);
        let (obj, fell_back) = place_or_heap(&mut m, arena, world.grad).unwrap();
        assert!(fell_back);
        assert_ne!(obj.addr(), arena.addr);
        assert!(m.heap().is_live(obj.addr()));

        let (obj, fell_back) = place_or_heap(&mut m, arena, world.student).unwrap();
        assert!(!fell_back);
        assert_eq!(obj.addr(), arena.addr);
    }
}
