//! §5.1 memory-leak defenses: placement delete and pool discipline.
//!
//! C++ has no built-in "placement delete" expression; §4.5 notes that the
//! recommendation to define one is "rarely followed", and §5.1 prescribes
//! either defining it or nulling pool pointers only after the full arena
//! is released. [`placement_delete`] is the correct release (it returns
//! the *whole* underlying block, whatever smaller type now lives in it);
//! [`PlacementPool`] packages the discipline for the leak experiment.

use pnew_memory::VirtAddr;
use pnew_object::ClassId;
use pnew_runtime::{Machine, RuntimeError};

use crate::placement::{self, ObjRef};

/// A correct placement delete: releases the **entire** heap block backing
/// `addr`, regardless of the (possibly smaller) type placed there last —
/// the fix for the Listing 23 leak.
///
/// # Errors
///
/// Fails on invalid frees and corrupted block headers.
pub fn placement_delete(machine: &mut Machine, addr: VirtAddr) -> Result<(), RuntimeError> {
    machine.heap_free(addr)
}

/// A heap-backed pool that hands out arenas for placement and tracks the
/// release discipline. With `use_placement_delete` false it releases via
/// the size of the *placed* type, reproducing the §4.5 leak; with it true
/// it releases full blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlacementPool {
    use_placement_delete: bool,
}

impl PlacementPool {
    /// Creates a pool with the given release discipline.
    pub fn new(use_placement_delete: bool) -> Self {
        PlacementPool { use_placement_delete }
    }

    /// Allocates a block sized for `alloc_class` and places `place_class`
    /// into it (the Listing 23 iteration body: `new GradStudent()` then
    /// `new (stud) Student()`).
    ///
    /// # Errors
    ///
    /// Fails when the heap is exhausted.
    pub fn allocate_and_replace(
        &self,
        machine: &mut Machine,
        alloc_class: ClassId,
        place_class: ClassId,
    ) -> Result<ObjRef, RuntimeError> {
        let big = placement::heap_new(machine, alloc_class)?;
        placement::placement_new(machine, big.addr(), place_class)
    }

    /// Releases an arena occupied by `placed_class`, honouring (or not)
    /// placement delete.
    ///
    /// # Errors
    ///
    /// Fails on invalid frees and corrupted block headers.
    pub fn release(&self, machine: &mut Machine, obj: ObjRef) -> Result<(), RuntimeError> {
        if self.use_placement_delete {
            placement_delete(machine, obj.addr())
        } else {
            // The vulnerable release: `delete st` through the smaller type.
            let size = machine.size_of(obj.class())?;
            machine.heap_free_sized(obj.addr(), size)
        }
    }

    /// `true` when the pool releases full blocks.
    pub fn uses_placement_delete(&self) -> bool {
        self.use_placement_delete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::student::StudentWorld;

    #[test]
    fn vulnerable_discipline_leaks_the_size_difference() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let pool = PlacementPool::new(false);
        assert!(!pool.uses_placement_delete());
        for i in 1..=20u64 {
            let st = pool.allocate_and_replace(&mut m, world.grad, world.student).unwrap();
            pool.release(&mut m, st).unwrap();
            // sizeof(GradStudent) - sizeof(Student) = 32 - 16 = 16 per round.
            assert_eq!(m.heap_stats().leaked_bytes, 16 * i);
        }
    }

    #[test]
    fn placement_delete_leaks_nothing() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let pool = PlacementPool::new(true);
        for _ in 0..20 {
            let st = pool.allocate_and_replace(&mut m, world.grad, world.student).unwrap();
            pool.release(&mut m, st).unwrap();
        }
        assert_eq!(m.heap_stats().leaked_bytes, 0);
        assert_eq!(m.heap_stats().live_blocks, 0);
    }

    #[test]
    fn direct_placement_delete_releases_whole_block() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let big = placement::heap_new(&mut m, world.grad).unwrap();
        let small = placement::placement_new(&mut m, big.addr(), world.student).unwrap();
        placement_delete(&mut m, small.addr()).unwrap();
        assert_eq!(m.heap_stats().live_blocks, 0);
        assert_eq!(m.heap_stats().leaked_bytes, 0);
    }
}
