//! §5.1 memory sanitization against information leaks.
//!
//! > "Before a memory arena allocated to pointer A is allocated to another
//! > pointer B, `memset()` or its other variants should be used to set the
//! > memory to uniform bit patterns."
//!
//! [`ManagedArena`] owns one arena through its reuse lifecycle and applies
//! (or deliberately skips) the memset between tenants, which is the single
//! switch the information-leak experiments (E16/E17) flip.

use pnew_memory::VirtAddr;
use pnew_object::{ClassId, CxxType};
use pnew_runtime::{Machine, RuntimeError};

use crate::placement::{ArrayRef, ObjRef};
use crate::protect::{Arena, PlacementError, PlacementMode};

/// An arena that is reused for successive tenants, optionally sanitized
/// between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManagedArena {
    arena: Arena,
    sanitize_on_reuse: bool,
    tenants: u32,
}

impl ManagedArena {
    /// Wraps an arena. With `sanitize_on_reuse` false this reproduces the
    /// vulnerable reuse of Listings 21/22.
    pub fn new(addr: VirtAddr, size: u32, sanitize_on_reuse: bool) -> Self {
        ManagedArena { arena: Arena::new(addr, size), sanitize_on_reuse, tenants: 0 }
    }

    /// The underlying arena descriptor.
    pub fn arena(&self) -> Arena {
        self.arena
    }

    /// How many tenants have been placed so far.
    pub fn tenants(&self) -> u32 {
        self.tenants
    }

    /// `true` if the arena sanitizes between tenants.
    pub fn sanitizes(&self) -> bool {
        self.sanitize_on_reuse
    }

    /// Marks the arena as already holding one tenant — used when the first
    /// tenant was created by ordinary `new` rather than through the arena
    /// (the Listing 22 flow, where the arena *is* a heap object).
    pub fn tick_first_tenant(&mut self) {
        self.tenants += 1;
    }

    fn pre_place(&mut self, machine: &mut Machine) -> Result<(), RuntimeError> {
        if self.sanitize_on_reuse && self.tenants > 0 {
            machine.memset(self.arena.addr, 0, self.arena.size)?;
        }
        self.tenants += 1;
        Ok(())
    }

    /// Places an object as the next tenant, sanitizing first if configured
    /// and this is a reuse.
    ///
    /// # Errors
    ///
    /// Propagates the placement mode's checks and runtime faults.
    pub fn place_object(
        &mut self,
        machine: &mut Machine,
        mode: PlacementMode,
        class: ClassId,
    ) -> Result<ObjRef, PlacementError> {
        self.pre_place(machine)?;
        mode.place_object(machine, self.arena, class)
    }

    /// Places a scalar array as the next tenant.
    ///
    /// # Errors
    ///
    /// Propagates the placement mode's checks and runtime faults.
    pub fn place_array(
        &mut self,
        machine: &mut Machine,
        mode: PlacementMode,
        elem: CxxType,
        len: u32,
    ) -> Result<ArrayRef, PlacementError> {
        self.pre_place(machine)?;
        mode.place_array(machine, self.arena, elem, len)
    }
}

/// §5.1's tempting-but-hazardous optimization: sanitize only the bytes
/// the incoming tenant's *fields* will occupy, skipping alignment padding
/// and the tail.
///
/// > "For efficiency sake, the programmer might be tempted to sanitize
/// > not the whole memory but only the chunk of memory … This would get
/// > complicated, when memory alignments are taken into account. … The
/// > bytes used for padding might contain data from A."
///
/// Provided so the E25 experiment can measure exactly that hazard; the
/// correct API is plain full-arena sanitization ([`ManagedArena`]).
///
/// # Errors
///
/// Propagates layout and memory faults.
pub fn sanitize_fields_only(
    machine: &mut Machine,
    arena_addr: VirtAddr,
    class: ClassId,
) -> Result<(), RuntimeError> {
    let layout = machine.layout(class)?;
    let ptr = machine.ptr_size();
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    for slot in layout.slots() {
        // Class-typed composite slots cover their own internal padding;
        // the "efficient" programmer zeroes leaf fields only.
        if slot.ty().as_class().is_some() {
            continue;
        }
        ranges.push((slot.offset(), slot.size()));
    }
    for v in layout.vptr_slots() {
        ranges.push((v.offset, ptr));
    }
    for (offset, size) in ranges {
        machine.memset(arena_addr + offset, 0, size)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::student::StudentWorld;
    use pnew_memory::SegmentKind;
    use pnew_runtime::VarDecl;

    fn pool(m: &mut Machine) -> VirtAddr {
        m.define_global("mem_pool", VarDecl::Buffer { size: 64, align: 8 }, SegmentKind::Bss)
            .unwrap()
    }

    #[test]
    fn first_tenant_is_never_sanitized() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let p = pool(&mut m);
        m.mmap_file(p, b"secret-password-data").unwrap();
        let mut arena = ManagedArena::new(p, 64, true);
        arena.place_array(&mut m, PlacementMode::Unchecked, CxxType::Char, 8).unwrap();
        // First placement: contents untouched (nothing to hide yet — the
        // data *is* the tenant's input in the Listing 21 flow).
        assert_eq!(m.space().read_cstr(p, 6).unwrap(), "secret");
        assert_eq!(arena.tenants(), 1);
    }

    #[test]
    fn reuse_with_sanitize_clears_residue() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let p = pool(&mut m);
        let mut arena = ManagedArena::new(p, 64, true);
        arena.place_array(&mut m, PlacementMode::Unchecked, CxxType::Char, 64).unwrap();
        m.mmap_file(p, b"root:x:0:0:hashed").unwrap();
        arena.place_array(&mut m, PlacementMode::Unchecked, CxxType::Char, 16).unwrap();
        // Every byte of the arena is zero now.
        assert_eq!(m.space().read_vec(p, 64).unwrap(), vec![0u8; 64]);
        assert!(arena.sanitizes());
    }

    #[test]
    fn reuse_without_sanitize_keeps_residue() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let p = pool(&mut m);
        let mut arena = ManagedArena::new(p, 64, false);
        arena.place_array(&mut m, PlacementMode::Unchecked, CxxType::Char, 64).unwrap();
        m.mmap_file(p, b"root:x:0:0:hashed").unwrap();
        arena.place_array(&mut m, PlacementMode::Unchecked, CxxType::Char, 16).unwrap();
        // The password bytes survive past the new, smaller tenant.
        assert_eq!(m.space().read_cstr(p, 17).unwrap(), "root:x:0:0:hashed");
    }

    #[test]
    fn field_only_sanitization_misses_the_padding() {
        // The §5.1 hazard in miniature: a class with alignment holes.
        let mut reg = pnew_object::ClassRegistry::new();
        let holey = reg
            .class("Holey")
            .field("tag", CxxType::Char)
            .field("gpa", CxxType::Double)
            .field("flag", CxxType::Char)
            .register();
        let mut m = pnew_runtime::MachineBuilder::new().build(reg);
        let pool = m
            .define_global(
                "pool",
                pnew_runtime::VarDecl::Buffer { size: 24, align: 8 },
                pnew_memory::SegmentKind::Bss,
            )
            .unwrap();
        m.mmap_file(pool, &[0xAA; 24]).unwrap();

        sanitize_fields_only(&mut m, pool, holey).unwrap();
        let bytes = m.space().read_vec(pool, 24).unwrap();
        // Fields zeroed: tag@0, gpa@8..16, flag@16.
        assert_eq!(bytes[0], 0);
        assert_eq!(&bytes[8..17], &[0u8; 9]);
        // Padding holes keep the previous tenant's bytes.
        assert_eq!(&bytes[1..8], &[0xAA; 7]);
        assert_eq!(&bytes[17..24], &[0xAA; 7]);
    }

    #[test]
    fn object_reuse_sanitization() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let p = pool(&mut m);
        let mut arena = ManagedArena::new(p, 64, true);
        let gst = arena.place_object(&mut m, PlacementMode::Unchecked, world.grad).unwrap();
        gst.write_elem_i32(&mut m, "ssn", 0, 123_456_789).unwrap();
        arena.place_object(&mut m, PlacementMode::Unchecked, world.student).unwrap();
        // The SSN residue beyond sizeof(Student) is gone.
        assert_eq!(m.space().read_i32(p + 16).unwrap(), 0);
    }
}
