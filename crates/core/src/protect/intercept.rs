//! §5.2 library interception for legacy software.
//!
//! > "Library-based protection approaches such as using libsafe and
//! > libverify would not require recompilation of software ... and can be
//! > updated appropriately to intercept dynamic invocations to placement
//! > new and carry out bounds checking. However, ... bounds checking may
//! > not be as easy here because placement new just operates on an
//! > address, not on a lexically declared array."
//!
//! The interceptor wraps every placement call and bounds-checks it against
//! whatever region metadata a *library* can recover without recompiling
//! the program: live heap blocks (from allocator metadata) and globals
//! (from the symbol table). It is honestly **blind to stack locals** — a
//! library has no per-frame size information — so stack-arena placements
//! pass through unchecked. The protection-matrix experiment (E20) shows
//! exactly that residual exposure.

use pnew_memory::VirtAddr;
use pnew_object::{ClassId, CxxType};
use pnew_runtime::Machine;

use crate::placement::{self, ArrayRef, ObjRef};
use crate::protect::PlacementError;

/// Bytes available from `addr` to the end of its containing known region,
/// or `None` when the interceptor has no metadata for the address.
fn known_remaining(machine: &Machine, addr: VirtAddr) -> Option<u32> {
    let (start, len) =
        machine.known_heap_block(addr).or_else(|| machine.known_global_region(addr))?;
    Some(len - addr.offset_from(start) as u32)
}

/// Intercepted `new (addr) T()`.
///
/// # Errors
///
/// Returns [`PlacementError::SizeExceedsArena`] when metadata proves the
/// placement oversized; passes the call through (checking nothing) when no
/// metadata covers `addr`.
pub fn intercepted_placement_new(
    machine: &mut Machine,
    addr: VirtAddr,
    class: ClassId,
) -> Result<ObjRef, PlacementError> {
    let size = machine.size_of(class)?;
    if let Some(remaining) = known_remaining(machine, addr) {
        if size > remaining {
            return Err(PlacementError::SizeExceedsArena { placed: size, arena: remaining });
        }
    }
    Ok(placement::placement_new(machine, addr, class)?)
}

/// Intercepted `new (addr) T[len]`.
///
/// # Errors
///
/// Same conditions as [`intercepted_placement_new`].
pub fn intercepted_placement_new_array(
    machine: &mut Machine,
    addr: VirtAddr,
    elem: CxxType,
    len: u32,
) -> Result<ArrayRef, PlacementError> {
    let esize = elem.scalar_size(&machine.policy()).expect("scalar element");
    let total = esize
        .checked_mul(len)
        .ok_or(PlacementError::SizeExceedsArena { placed: u32::MAX, arena: 0 })?;
    if let Some(remaining) = known_remaining(machine, addr) {
        if total > remaining {
            return Err(PlacementError::SizeExceedsArena { placed: total, arena: remaining });
        }
    }
    Ok(placement::placement_new_array(machine, addr, elem, len)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::student::StudentWorld;
    use pnew_memory::SegmentKind;
    use pnew_runtime::VarDecl;

    #[test]
    fn global_arena_placements_are_checked() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let stud =
            m.define_global("stud", VarDecl::Class(world.student), SegmentKind::Bss).unwrap();
        // The interceptor sees the 16-byte global and blocks the
        // 32-byte GradStudent.
        let err = intercepted_placement_new(&mut m, stud, world.grad).unwrap_err();
        assert_eq!(err, PlacementError::SizeExceedsArena { placed: 32, arena: 16 });
        // Same-size placement passes.
        assert!(intercepted_placement_new(&mut m, stud, world.student).is_ok());
    }

    #[test]
    fn heap_arena_placements_are_checked() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let block = m.heap_alloc(16).unwrap();
        let err = intercepted_placement_new(&mut m, block, world.grad).unwrap_err();
        assert!(matches!(err, PlacementError::SizeExceedsArena { placed: 32, .. }));
    }

    #[test]
    fn interior_pointers_use_remaining_length() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let pool = m.define_global("pool", VarDecl::char_buf(64), SegmentKind::Bss).unwrap();
        // 48 bytes remain at pool+16: a 64-byte array is refused there.
        let err =
            intercepted_placement_new_array(&mut m, pool + 16, CxxType::Char, 64).unwrap_err();
        assert_eq!(err, PlacementError::SizeExceedsArena { placed: 64, arena: 48 });
        assert!(intercepted_placement_new_array(&mut m, pool + 16, CxxType::Char, 48).is_ok());
    }

    #[test]
    fn stack_locals_are_invisible_to_the_library() {
        // The §5.2 caveat: no metadata for stack arenas, so the oversized
        // placement sails through.
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        m.push_frame("addStudent", &[("stud", VarDecl::Class(world.student))]).unwrap();
        let stud = m.local_addr("stud").unwrap();
        assert!(intercepted_placement_new(&mut m, stud, world.grad).is_ok());
    }

    #[test]
    fn freed_heap_blocks_lose_metadata() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let block = m.heap_alloc(16).unwrap();
        m.heap_free(block).unwrap();
        // No metadata -> passes through (and is, genuinely, dangerous).
        assert!(intercepted_placement_new(&mut m, block, world.grad).is_ok());
    }
}
