//! The placement-new expression — the paper's §2 primitive, faithful to
//! its (lack of) checking.
//!
//! ```c++
//! void *operator new (size_t, void *p) throw() { return p; }
//! void *operator new[] (size_t, void *p) throw() { return p; }
//! ```
//!
//! [`placement_new`] and [`placement_new_array`] perform **no bounds
//! checking, no type checking, and no alignment checking** (§2.5): they
//! construct an object/array image at whatever non-null address they are
//! given. Every attack in this crate is built on that silence. The checked
//! counterparts prescribed by §5.1 live in [`crate::protect`].

use pnew_memory::VirtAddr;
use pnew_object::{ClassId, CxxType};
use pnew_runtime::{Machine, RuntimeError};

/// A typed reference to an object placed in simulated memory.
///
/// Mirrors the `T *obj = new (addr) T(...)` result: an address plus the
/// static type the program believes lives there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjRef {
    addr: VirtAddr,
    class: ClassId,
}

impl ObjRef {
    /// The object base address.
    pub fn addr(&self) -> VirtAddr {
        self.addr
    }

    /// The static class of the reference.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Address of a field (`&obj->path`).
    ///
    /// # Errors
    ///
    /// Fails if the path does not resolve.
    pub fn field_addr(&self, machine: &mut Machine, path: &str) -> Result<VirtAddr, RuntimeError> {
        machine.field_addr(self.class, self.addr, path)
    }

    /// Address of an array element (`&obj->path[index]`).
    ///
    /// # Errors
    ///
    /// Fails if the path does not resolve or the index is out of bounds.
    pub fn element_addr(
        &self,
        machine: &mut Machine,
        path: &str,
        index: u32,
    ) -> Result<VirtAddr, RuntimeError> {
        machine.element_addr(self.class, self.addr, path, index)
    }

    /// Writes an `int` field (`obj->path = value`).
    ///
    /// # Errors
    ///
    /// Fails if the path does not resolve or memory faults.
    pub fn write_i32(
        &self,
        machine: &mut Machine,
        path: &str,
        value: i32,
    ) -> Result<(), RuntimeError> {
        let a = self.field_addr(machine, path)?;
        machine.space_mut().write_i32(a, value)?;
        Ok(())
    }

    /// Reads an `int` field.
    ///
    /// # Errors
    ///
    /// Fails if the path does not resolve or memory faults.
    pub fn read_i32(&self, machine: &mut Machine, path: &str) -> Result<i32, RuntimeError> {
        let a = self.field_addr(machine, path)?;
        Ok(machine.space().read_i32(a)?)
    }

    /// Writes a `double` field.
    ///
    /// # Errors
    ///
    /// Fails if the path does not resolve or memory faults.
    pub fn write_f64(
        &self,
        machine: &mut Machine,
        path: &str,
        value: f64,
    ) -> Result<(), RuntimeError> {
        let a = self.field_addr(machine, path)?;
        machine.space_mut().write_f64(a, value)?;
        Ok(())
    }

    /// Reads a `double` field.
    ///
    /// # Errors
    ///
    /// Fails if the path does not resolve or memory faults.
    pub fn read_f64(&self, machine: &mut Machine, path: &str) -> Result<f64, RuntimeError> {
        let a = self.field_addr(machine, path)?;
        Ok(machine.space().read_f64(a)?)
    }

    /// Writes `obj->path[index] = value` for an `int` array field — the
    /// `st->setSSN(...)` of the listings. **No bounds check beyond the
    /// declared array length**: the declared length is what the victim
    /// program itself uses, and writing `ssn[0..3]` through an overflowed
    /// placement is exactly the attack.
    ///
    /// # Errors
    ///
    /// Fails if the path/index does not resolve or memory faults.
    pub fn write_elem_i32(
        &self,
        machine: &mut Machine,
        path: &str,
        index: u32,
        value: i32,
    ) -> Result<(), RuntimeError> {
        let a = self.element_addr(machine, path, index)?;
        machine.space_mut().write_i32(a, value)?;
        Ok(())
    }

    /// Reads `obj->path[index]` for an `int` array field.
    ///
    /// # Errors
    ///
    /// Fails if the path/index does not resolve or memory faults.
    pub fn read_elem_i32(
        &self,
        machine: &mut Machine,
        path: &str,
        index: u32,
    ) -> Result<i32, RuntimeError> {
        let a = self.element_addr(machine, path, index)?;
        Ok(machine.space().read_i32(a)?)
    }
}

/// A reference to an array placed in simulated memory
/// (`new (addr) char[n]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayRef {
    addr: VirtAddr,
    elem: CxxType,
    len: u32,
}

impl ArrayRef {
    /// Base address of the array.
    pub fn addr(&self) -> VirtAddr {
        self.addr
    }

    /// Element type.
    pub fn elem(&self) -> &CxxType {
        &self.elem
    }

    /// Declared element count.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` when the declared length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes the program believes the array occupies.
    pub fn byte_len(&self, machine: &Machine) -> u32 {
        self.elem.scalar_size(&machine.policy()).expect("array element is scalar") * self.len
    }
}

/// The placement-new expression for single objects:
/// `T *obj = new (addr) T()`.
///
/// Performs the compiler-generated part of construction (vtable pointers)
/// and **nothing else** — no bounds, type, or alignment checks (§2.5).
///
/// # Errors
///
/// Fails only as the real expression would: on a null address (undefined
/// behaviour the runtime refuses) or a hardware-level memory fault while
/// writing the vptr. Overflowing a smaller arena is *not* an error.
///
/// # Examples
///
/// ```
/// use pnew_core::{placement_new, student::StudentWorld};
/// use pnew_memory::SegmentKind;
/// use pnew_runtime::VarDecl;
///
/// # fn main() -> Result<(), pnew_runtime::RuntimeError> {
/// let world = StudentWorld::plain();
/// let mut m = world.machine_default();
/// // Student stud; GradStudent *st = new (&stud) GradStudent();
/// let stud = m.define_global("stud", VarDecl::Class(world.student), SegmentKind::Bss)?;
/// let st = placement_new(&mut m, stud, world.grad)?;
/// assert_eq!(st.addr(), stud); // placed exactly at &stud, 16 bytes short
/// # Ok(())
/// # }
/// ```
pub fn placement_new(
    machine: &mut Machine,
    addr: VirtAddr,
    class: ClassId,
) -> Result<ObjRef, RuntimeError> {
    if addr.is_null() {
        return Err(RuntimeError::NullPlacement);
    }
    machine.construct(addr, class)?;
    Ok(ObjRef { addr, class })
}

/// The placement-new expression for arrays:
/// `char *buf = new (addr) char[n]`.
///
/// # Errors
///
/// Fails on a null address. The length is *not* checked against anything —
/// that is the point.
pub fn placement_new_array(
    machine: &mut Machine,
    addr: VirtAddr,
    elem: CxxType,
    len: u32,
) -> Result<ArrayRef, RuntimeError> {
    let _ = machine; // arrays of scalars need no construction
    if addr.is_null() {
        return Err(RuntimeError::NullPlacement);
    }
    Ok(ArrayRef { addr, elem, len })
}

/// Placement construction from a serialized object (§3.2, Listing 7):
/// `T *t = new (addr) T(remoteobj)` with a deep-copying constructor.
///
/// The *entire* payload is copied to `addr` — the receiving constructor
/// trusts the sender's framing — and then the vtable pointers of the
/// *placed class* are restored, as a real constructor would after member
/// initialization. Payload bytes beyond `sizeof(class)` remain in memory:
/// the object overflow via remote object.
///
/// # Errors
///
/// Fails on a null address or a memory fault (e.g. payload so large it
/// leaves the segment — the simulated segfault).
pub fn placement_new_copy(
    machine: &mut Machine,
    addr: VirtAddr,
    class: ClassId,
    payload: &[u8],
) -> Result<ObjRef, RuntimeError> {
    if addr.is_null() {
        return Err(RuntimeError::NullPlacement);
    }
    machine.space_mut().write_bytes(addr, payload)?;
    machine.construct(addr, class)?;
    Ok(ObjRef { addr, class })
}

/// The ordinary (non-placement) heap `new`: allocates and constructs.
///
/// # Errors
///
/// Fails when the heap is exhausted.
pub fn heap_new(machine: &mut Machine, class: ClassId) -> Result<ObjRef, RuntimeError> {
    let size = machine.size_of(class)?;
    let addr = machine.heap_alloc(size)?;
    machine.construct(addr, class)?;
    Ok(ObjRef { addr, class })
}

/// The ordinary heap `new[]` for scalar arrays.
///
/// # Errors
///
/// Fails when the heap is exhausted.
pub fn heap_new_array(
    machine: &mut Machine,
    elem: CxxType,
    len: u32,
) -> Result<ArrayRef, RuntimeError> {
    let esize = elem.scalar_size(&machine.policy()).expect("scalar element");
    let addr = machine.heap_alloc(esize * len)?;
    Ok(ArrayRef { addr, elem, len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::student::StudentWorld;
    use pnew_memory::SegmentKind;
    use pnew_runtime::VarDecl;

    #[test]
    fn placement_at_null_is_refused() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        assert!(matches!(
            placement_new(&mut m, VirtAddr::NULL, world.student),
            Err(RuntimeError::NullPlacement)
        ));
        assert!(matches!(
            placement_new_array(&mut m, VirtAddr::NULL, CxxType::Char, 4),
            Err(RuntimeError::NullPlacement)
        ));
        assert!(matches!(
            placement_new_copy(&mut m, VirtAddr::NULL, world.student, &[]),
            Err(RuntimeError::NullPlacement)
        ));
    }

    #[test]
    fn placement_performs_no_size_check() {
        // char c; int *b = new (&c) int;  — §2.5 item 1.
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let c = m.define_global("c", VarDecl::Ty(CxxType::Char), SegmentKind::Bss).unwrap();
        // Placing a 32-byte GradStudent at a 1-byte char succeeds silently.
        let gs = placement_new(&mut m, c, world.grad).unwrap();
        assert_eq!(gs.addr(), c);
    }

    #[test]
    fn placement_of_polymorphic_class_writes_vptr() {
        let world = StudentWorld::with_virtuals();
        let mut m = world.machine_default();
        let stud =
            m.define_global("stud", VarDecl::Class(world.student), SegmentKind::Bss).unwrap();
        placement_new(&mut m, stud, world.grad).unwrap();
        let vptr = m.space().read_ptr(stud).unwrap();
        assert_eq!(Some(vptr), m.vtable_addr(world.grad));
    }

    #[test]
    fn obj_ref_field_access() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let stud =
            m.define_global("stud", VarDecl::Class(world.student), SegmentKind::Bss).unwrap();
        let st = placement_new(&mut m, stud, world.grad).unwrap();
        st.write_f64(&mut m, "gpa", 4.0).unwrap();
        st.write_i32(&mut m, "year", 2009).unwrap();
        st.write_elem_i32(&mut m, "ssn", 2, 777).unwrap();
        assert_eq!(st.read_f64(&mut m, "gpa").unwrap(), 4.0);
        assert_eq!(st.read_i32(&mut m, "year").unwrap(), 2009);
        assert_eq!(st.read_elem_i32(&mut m, "ssn", 2).unwrap(), 777);
        assert_eq!(st.element_addr(&mut m, "ssn", 0).unwrap(), stud + 16);
        assert_eq!(st.class(), world.grad);
    }

    #[test]
    fn array_ref_geometry() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let pool = m.define_global("pool", VarDecl::char_buf(64), SegmentKind::Bss).unwrap();
        let arr = placement_new_array(&mut m, pool, CxxType::Char, 128).unwrap();
        assert_eq!(arr.addr(), pool);
        assert_eq!(arr.len(), 128);
        assert!(!arr.is_empty());
        // The array *claims* 128 bytes over a 64-byte pool — no complaint.
        assert_eq!(arr.byte_len(&m), 128);
    }

    #[test]
    fn copy_placement_writes_past_the_arena() {
        let world = StudentWorld::plain();
        let mut m = world.machine_default();
        let stud =
            m.define_global("stud", VarDecl::Class(world.student), SegmentKind::Bss).unwrap();
        let neighbour = m.define_global("n", VarDecl::Ty(CxxType::Int), SegmentKind::Bss).unwrap();
        // Payload of 24 bytes over a 16-byte Student arena.
        let payload = [0x41u8; 24];
        placement_new_copy(&mut m, stud, world.student, &payload).unwrap();
        assert_eq!(
            m.space().read_u32(neighbour).unwrap(),
            0x4141_4141,
            "the deep copy clobbered the neighbour"
        );
    }

    #[test]
    fn heap_new_allocates_and_constructs() {
        let world = StudentWorld::with_virtuals();
        let mut m = world.machine_default();
        let st = heap_new(&mut m, world.grad).unwrap();
        assert!(m.heap().is_live(st.addr()));
        let vptr = m.space().read_ptr(st.addr()).unwrap();
        assert_eq!(Some(vptr), m.vtable_addr(world.grad));
        let arr = heap_new_array(&mut m, CxxType::Char, 16).unwrap();
        assert_eq!(m.heap().payload_size(arr.addr()), Some(16));
    }
}
