//! E10/E11 — virtual table pointer subterfuge (§3.8.2).
//!
//! With `virtual char* getInfo()` added to both classes, the vptr is the
//! first word of every instance; "any overflow that can overwrite an
//! object can in fact overwrite the virtual table pointer. ... Such an
//! overflow allows the attacker to invoke arbitrary methods as
//! implementations of `virtual char* getInfo()` or even crash the program
//! by supplying an invalid address."
//!
//! [`run_bss`] mounts the subterfuge through the Listing 11/12 bss
//! geometry (stud1's `ssn[]` overwrites stud2's vptr); [`run_stack`]
//! through the Listing 16 frame geometry (`first.__vptr`). Both build a
//! fake vtable out of bytes the attacker already controls — the
//! overflowed `ssn` words themselves — whose slot 0 points at the
//! privileged `system` entry. [`run_crash`] supplies an invalid vptr
//! instead, reproducing the crash variant.

use pnew_memory::SegmentKind;
use pnew_runtime::{DispatchOutcome, Privilege, RuntimeError, VarDecl};

use crate::attacks::place_object_site;
use crate::protect::Arena;
use crate::report::{AttackConfig, AttackKind, AttackReport};
use crate::student::StudentWorld;

/// E10: vptr subterfuge via data/bss overflow.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run_bss(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::VptrSubterfuge);
    let world = StudentWorld::with_virtuals();
    let mut m = world.machine(config);
    let system = m.register_function("system", Privilege::Privileged);
    let system_addr = m.funcs().def(system).addr();

    // Student stud1, stud2; (virtual variant: 24 bytes each, vptr first)
    let stud1 = m.define_global("stud1", VarDecl::Class(world.student), SegmentKind::Bss)?;
    let stud2 = m.define_global("stud2", VarDecl::Class(world.student), SegmentKind::Bss)?;
    crate::placement_new(&mut m, stud2, world.student)?; // benign construct
    report.note(format!("stud2.__vptr at {stud2} (offset 0, §3.8.2)"));

    let student_size = m.size_of(world.student)?;
    let arena = Arena::new(stud1, student_size);
    let gs = place_object_site(&mut m, config, arena, world.grad, &mut report)?;

    // ssn[0] lands on stud2.__vptr; ssn[1] lands on stud2+4, which the
    // attacker uses as the fake vtable body: slot 0 = &system.
    let fake_table = stud2 + 4;
    m.input_mut().extend([
        i64::from(fake_table.value()),  // ssn[0] → stud2.__vptr
        i64::from(system_addr.value()), // ssn[1] → fake slot 0
        0i64,
    ]);
    crate::attacks::ssn_input_loop(&mut m, &gs)?;
    report.note(format!(
        "forged vptr {} pointing at fake vtable (slot 0 = system at {system_addr})",
        fake_table
    ));

    // The program later calls stud2->getInfo().
    let outcome = m.virtual_call(stud2, world.student, "getInfo")?;
    report.note(format!("virtual dispatch: {outcome}"));
    report.succeeded = matches!(
        &outcome,
        DispatchOutcome::Hijacked { privileged: true, name, .. } if name == "system"
    );
    Ok(report)
}

/// E11: vptr subterfuge via stack overflow (the Listing 16 frame with
/// virtual classes: `gs->ssn[]` overwrites `first.__vptr`).
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run_stack(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::VptrSubterfuge);
    let world = StudentWorld::with_virtuals();
    let mut m = world.machine(config);
    let system = m.register_function("system", Privilege::Privileged);
    let system_addr = m.funcs().def(system).addr();

    m.push_frame(
        "addStudent",
        &[("first", VarDecl::Class(world.student)), ("stud", VarDecl::Class(world.student))],
    )?;
    let first = m.local_addr("first")?;
    let stud = m.local_addr("stud")?;
    crate::placement_new(&mut m, first, world.student)?; // construct first

    let student_size = m.size_of(world.student)?;
    let arena = Arena::new(stud, student_size);
    let gs = place_object_site(&mut m, config, arena, world.grad, &mut report)?;
    report.note(format!("first.__vptr at {first}; ssn[] of *gs starts at {}", stud + student_size));

    let fake_table = first + 4;
    m.input_mut().extend([i64::from(fake_table.value()), i64::from(system_addr.value()), 0i64]);
    crate::attacks::ssn_input_loop(&mut m, &gs)?;

    let outcome = m.virtual_call(first, world.student, "getInfo")?;
    report.note(format!("virtual dispatch: {outcome}"));
    report.succeeded = matches!(
        &outcome,
        DispatchOutcome::Hijacked { privileged: true, name, .. } if name == "system"
    );
    m.ret()?;
    Ok(report)
}

/// The crash variant: an invalid vptr makes the dispatch fault —
/// "or even crash the program by supplying an invalid address as the
/// value of `*__vptr`".
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run_crash(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::VptrSubterfuge);
    let world = StudentWorld::with_virtuals();
    let mut m = world.machine(config);

    let stud1 = m.define_global("stud1", VarDecl::Class(world.student), SegmentKind::Bss)?;
    let stud2 = m.define_global("stud2", VarDecl::Class(world.student), SegmentKind::Bss)?;
    crate::placement_new(&mut m, stud2, world.student)?;

    let arena = Arena::new(stud1, m.size_of(world.student)?);
    let gs = place_object_site(&mut m, config, arena, world.grad, &mut report)?;
    m.input_mut().extend([0x44i64, 0i64, 0i64]); // invalid vptr 0x44
    crate::attacks::ssn_input_loop(&mut m, &gs)?;

    let outcome = m.virtual_call(stud2, world.student, "getInfo")?;
    report.note(format!("virtual dispatch: {outcome}"));
    // "Success" for the crash variant = the program faults instead of
    // dispatching (a denial of service in itself).
    report.succeeded = matches!(outcome, DispatchOutcome::Fault { .. });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Defense;

    #[test]
    fn bss_subterfuge_reaches_system() {
        let r = run_bss(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded, "{}", r.verdict());
        assert!(r.evidence.iter().any(|e| e.contains("forged vptr")));
    }

    #[test]
    fn stack_subterfuge_reaches_system() {
        let r = run_stack(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded, "{}", r.verdict());
    }

    #[test]
    fn invalid_vptr_crashes_the_dispatch() {
        let r = run_crash(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded);
        assert!(r.evidence.iter().any(|e| e.contains("fault")));
    }

    #[test]
    fn checked_placement_blocks_all_variants() {
        let cfg = AttackConfig::with_defense(Defense::correct_coding());
        assert!(!run_bss(&cfg).unwrap().succeeded);
        assert!(!run_stack(&cfg).unwrap().succeeded);
        assert!(!run_crash(&cfg).unwrap().succeeded);
    }

    #[test]
    fn interceptor_blocks_bss_but_not_stack() {
        let cfg = AttackConfig::with_defense(Defense::intercept());
        assert!(!run_bss(&cfg).unwrap().succeeded);
        assert!(run_stack(&cfg).unwrap().succeeded);
    }

    #[test]
    fn dispatch_is_valid_without_the_attack() {
        // Sanity: an untouched stud2 dispatches to Student::getInfo.
        let world = StudentWorld::with_virtuals();
        let mut m = world.machine_default();
        let stud2 =
            m.define_global("stud2", VarDecl::Class(world.student), SegmentKind::Bss).unwrap();
        crate::placement_new(&mut m, stud2, world.student).unwrap();
        let out = m.virtual_call(stud2, world.student, "getInfo").unwrap();
        assert!(matches!(out, DispatchOutcome::Valid { name, .. } if name == "Student::getInfo"));
    }
}
