//! E8 — overwriting local variables on the stack (§3.7.2, Listing 15),
//! including the paper's alignment analysis.
//!
//! ```c++
//! void addStudent (bool isGradStudent) {
//!   int n = 5; Student stud;
//!   if (isGradStudent) {
//!     GradStudent *gs = new (&stud) GradStudent();
//!     [...]
//!   }
//!   for (int i = 0; i < n; i++) { [...] }
//! }
//! ```
//!
//! "It is necessary to note that the memory for `n` is allocated with a
//! 4-byte alignment. `ssn[0]` does not overwrite `n`, but `ssn[1]`
//! overwrites `n` because `stud` as an instance of `Student` does not end
//! exactly at the 4-byte alignment; it leaves 4 bytes for padding, which
//! is occupied by `ssn[0]`."
//!
//! Success predicate: `n` takes the value written through `ssn[1]` while
//! `ssn[0]` lands in padding, and the `for` loop runs the attacker-chosen
//! number of iterations.

use pnew_object::CxxType;
use pnew_runtime::{RuntimeError, VarDecl};

use crate::attacks::{place_object_site, ssn_input_loop};
use crate::protect::Arena;
use crate::report::{AttackConfig, AttackKind, AttackReport};
use crate::student::StudentWorld;

/// The attacker's replacement for the loop bound `n` (the honest value
/// is 5).
pub const FORGED_N: i32 = 42;

/// Runs Listing 15.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::StackLocalMod);
    let world = StudentWorld::plain();
    let mut m = world.machine(config);

    // int n = 5; Student stud;  (declaration order fixes the geometry)
    m.push_frame(
        "addStudent",
        &[("n", VarDecl::Ty(CxxType::Int)), ("stud", VarDecl::Class(world.student))],
    )?;
    let n_addr = m.local_addr("n")?;
    m.space_mut().write_i32(n_addr, 5)?;
    let stud = m.local_addr("stud")?;
    let stud_end = stud + m.size_of(world.student)?;
    let padding = n_addr.offset_from(stud_end) as u32;
    report.note(format!(
        "stud ends at {stud_end}, n at {n_addr}: {padding} bytes of alignment padding between"
    ));
    report.measure("padding_bytes", f64::from(padding));

    let arena = Arena::new(stud, m.size_of(world.student)?);
    let gs = place_object_site(&mut m, config, arena, world.grad, &mut report)?;

    // ssn[0] → padding, ssn[1] → n, ssn[2] → beyond (skipped).
    m.input_mut().extend([0x5150_5150i64, i64::from(FORGED_N), 0i64]);
    ssn_input_loop(&mut m, &gs)?;

    let n_after = m.space().read_i32(n_addr)?;
    report.note(format!("n before: 5, after: {n_after}"));
    report.measure("n_after", f64::from(n_after));

    // for (int i = 0; i < n; i++): count the iterations actually run.
    let mut iterations = 0u32;
    let mut i = 0i32;
    while i < n_after && iterations < 1_000_000 {
        iterations += 1;
        i += 1;
    }
    report.measure("loop_iterations", f64::from(iterations));
    report.succeeded = n_after == FORGED_N;

    if padding > 0 {
        // Verify the paper's claim literally: ssn[0]'s value is sitting in
        // the padding bytes, not in n.
        let pad_val = m.space().read_i32(stud_end)?;
        report.note(format!(
            "ssn[0] value 0x{pad_val:08x} rests in the padding at {stud_end}; n was hit by ssn[1]"
        ));
    }
    m.ret()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Defense;
    use pnew_object::LayoutPolicy;

    #[test]
    fn ssn1_overwrites_n_and_ssn0_lands_in_padding() {
        let r = run(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded);
        assert_eq!(r.measurement("padding_bytes"), Some(4.0));
        assert_eq!(r.measurement("n_after"), Some(f64::from(FORGED_N)));
        assert_eq!(r.measurement("loop_iterations"), Some(f64::from(FORGED_N)));
        assert!(r.evidence.iter().any(|e| e.contains("padding")));
    }

    #[test]
    fn i386_abi_alignment_removes_the_padding() {
        // Ablation: with 4-byte double alignment Student aligns to 4, the
        // frame packs tight, and ssn[0] hits n directly — so the forged
        // value (sent through ssn[1]) misses and the attack fails as
        // scripted. The paper's §3.7.2 note is exactly about this
        // sensitivity.
        let mut cfg = AttackConfig::paper();
        cfg.policy = LayoutPolicy::i386_abi();
        let r = run(&cfg).unwrap();
        assert_eq!(r.measurement("padding_bytes"), Some(0.0));
        assert!(!r.succeeded);
    }

    #[test]
    fn blocked_by_checked_placement() {
        let r = run(&AttackConfig::with_defense(Defense::correct_coding())).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.measurement("n_after"), Some(5.0));
        assert_eq!(r.measurement("loop_iterations"), Some(5.0));
    }

    #[test]
    fn interceptor_misses_stack_arenas() {
        let r = run(&AttackConfig::with_defense(Defense::intercept())).unwrap();
        assert!(r.succeeded);
    }
}
