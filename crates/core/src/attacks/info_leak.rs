//! E16/E17 — information leakage (§4.3, Listings 21/22).
//!
//! "Information leak can occur when a smaller object is allocated in the
//! memory pool, where a larger object was allocated earlier. The
//! placement new operator facilitates carrying out such operations,
//! without however sanitizing the bits of the memory pool."
//!
//! * [`run_array`] (Listing 21): a password file is read into `mem_pool`;
//!   a user-supplied string is then placed over the pool; `store()` ships
//!   the pool contents onward — including every password byte past the
//!   short user string.
//! * [`run_object`] (Listing 22): a `GradStudent` (with SSN) is created;
//!   a `Student` is later placed over it; the `ssn[]` words survive past
//!   `sizeof(Student)` and leave with the stored object.
//!
//! The §5.1 sanitization defense (`memset` before reuse) is applied when
//! [`Defense::sanitize_reuse`](crate::Defense) is set.

use pnew_memory::SegmentKind;
use pnew_object::CxxType;
use pnew_runtime::{Machine, RuntimeError, VarDecl};

use crate::placement::heap_new;
use crate::protect::{ManagedArena, PlacementError};
use crate::report::{AttackConfig, AttackKind, AttackReport};
use crate::student::StudentWorld;

/// Size of the shared memory pool (`SIZE` in Listing 21).
pub const POOL_SIZE: u32 = 192;
/// Cap on the user string (`MAX_USERDATA ≤ SIZE`).
pub const MAX_USERDATA: u32 = 192;

/// Deterministic synthetic password file (stands in for `/etc/shadow`;
/// see DESIGN.md substitutions).
pub fn password_file(seed: u64) -> Vec<u8> {
    let users = ["root", "alice", "bob", "carol", "daemon"];
    let mut out = Vec::new();
    let mut state = seed | 1;
    for (i, u) in users.iter().enumerate() {
        let mut hash = String::new();
        for _ in 0..16 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            hash.push(char::from(b'a' + ((state >> 33) % 26) as u8));
        }
        out.extend_from_slice(format!("{u}:$1${hash}:{}:0:\n", 1000 + i).as_bytes());
    }
    out.truncate(POOL_SIZE as usize);
    out
}

/// Counts how many bytes of `secret` are recoverable verbatim from
/// `observed` at the same offsets.
fn recoverable_bytes(observed: &[u8], secret: &[u8]) -> u32 {
    observed.iter().zip(secret.iter()).filter(|(a, b)| a == b && **a != 0).count() as u32
}

/// E16: information leakage via arrays (Listing 21).
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run_array(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::InfoLeakArray);
    let world = StudentWorld::plain();
    let mut m = world.machine(config);

    // char mem_pool[SIZE];
    let pool = m.define_global(
        "mem_pool",
        VarDecl::Buffer { size: POOL_SIZE, align: 8 },
        SegmentKind::Bss,
    )?;
    let mut arena = ManagedArena::new(pool, POOL_SIZE, config.defense.sanitize_reuse);

    // Tenant 1: mmap/read the password file into the pool.
    arena
        .place_array(&mut m, config.defense.placement, CxxType::Char, POOL_SIZE)
        .map_err(unwrap_placement)?;
    let secret = password_file(config.seed);
    m.mmap_file(pool, &secret)?;
    report.note(format!("password file ({} bytes) read into mem_pool at {pool}", secret.len()));

    // Tenant 2: userdata = new (mem_pool) char[MAX_USERDATA]; user sends a
    // short string.
    let user_string = b"guest\0";
    arena
        .place_array(&mut m, config.defense.placement, CxxType::Char, MAX_USERDATA)
        .map_err(unwrap_placement)?;
    m.strncpy(pool, user_string, user_string.len() as u32)?;

    // store(userdata): the program ships MAX_USERDATA bytes onward.
    let stored = m.space().read_vec(pool, MAX_USERDATA)?;
    let leaked = recoverable_bytes(&stored[user_string.len()..], &secret[user_string.len()..]);
    report.measure("leaked_bytes", f64::from(leaked));
    report.measure("secret_bytes", f64::from(secret.len() as u32));
    report.succeeded = leaked > 0;
    if report.succeeded {
        let sample = String::from_utf8_lossy(&stored[user_string.len()..user_string.len() + 24])
            .into_owned();
        report.note(format!("stored buffer carries password residue: {sample:?}…"));
    } else {
        report.blocked_by = Some("memory sanitization".to_owned());
        report.note("arena sanitized between tenants: no residue in the stored buffer");
    }
    Ok(report)
}

/// E17: information leakage via objects (Listing 22).
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run_object(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::InfoLeakObject);
    let world = StudentWorld::plain();
    let mut m = world.machine(config);

    // gst = new GradStudent(); // contains SSN
    let gst = heap_new(&mut m, world.grad)?;
    let ssn = [123i32, 45, 6789];
    for (i, v) in ssn.iter().enumerate() {
        gst.write_elem_i32(&mut m, "ssn", i as u32, *v)?;
    }
    report.note(format!("GradStudent at {} holds SSN {:?}", gst.addr(), ssn));

    // Student *st = new (gst) Student(); // does not clean SSN
    let grad_size = m.size_of(world.grad)?;
    let mut arena = ManagedArena::new(gst.addr(), grad_size, config.defense.sanitize_reuse);
    arena.tick_first_tenant(); // the GradStudent was tenant 1
    arena
        .place_object(&mut m, config.defense.placement, world.student)
        .map_err(unwrap_placement)?;

    // store(st): ships sizeof-GradStudent bytes starting at the arena.
    let student_size = m.size_of(world.student)?;
    let stored = m.space().read_vec(gst.addr(), grad_size)?;
    let mut recovered = Vec::new();
    for i in 0..3usize {
        let off = student_size as usize + i * 4;
        recovered.push(i32::from_le_bytes(stored[off..off + 4].try_into().unwrap()));
    }
    let leaked = recovered == ssn;
    report.note(format!("bytes past sizeof(Student) decode to {recovered:?}"));
    report.measure(
        "ssn_words_leaked",
        f64::from(
            recovered.iter().zip(ssn.iter()).filter(|(a, b)| a == b && **a != 0).count() as u32
        ),
    );
    report.succeeded = leaked;
    if !leaked && config.defense.sanitize_reuse {
        report.blocked_by = Some("memory sanitization".to_owned());
    }
    Ok(report)
}

/// Outcome of the E25 partial-sanitization experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaddingLeakOutcome {
    /// `sizeof` of the placed class.
    pub object_size: u32,
    /// Bytes covered by leaf fields (what field-wise sanitization clears).
    pub field_bytes: u32,
    /// Padding bytes (holes + tail) inside the object footprint.
    pub padding_bytes: u32,
    /// Secret bytes recoverable after field-only sanitization.
    pub leaked_after_partial: u32,
    /// Secret bytes recoverable after full-arena sanitization.
    pub leaked_after_full: u32,
}

/// E25 — the §5.1 partial-sanitization hazard: "The bytes used for
/// padding might contain data from A."
///
/// A secret-filled arena is reused for a class with alignment holes
/// (`char; double; char`). The "efficient" field-wise memset clears only
/// the leaf fields; the experiment counts the secret bytes that survive
/// in the holes and tail, and contrasts with the correct full-arena
/// memset.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run_padding_leak(config: &AttackConfig) -> Result<PaddingLeakOutcome, RuntimeError> {
    use crate::protect::sanitize_fields_only;

    let mut reg = pnew_object::ClassRegistry::new();
    let holey = reg
        .class("SessionRecord")
        .field("tag", CxxType::Char)
        .field("balance", CxxType::Double)
        .field("flag", CxxType::Char)
        .register();
    let build = || {
        pnew_runtime::MachineBuilder::new()
            .policy(config.policy)
            .seed(config.seed)
            .build(reg.clone())
    };

    let mut m = build();
    let size = m.size_of(holey)?;
    let layout = m.layout(holey)?;
    let field_bytes: u32 =
        layout.slots().iter().filter(|s| s.ty().as_class().is_none()).map(|s| s.size()).sum();

    let measure = |m: &Machine, pool: pnew_memory::VirtAddr| -> Result<u32, RuntimeError> {
        let bytes = m.space().read_vec(pool, size)?;
        Ok(bytes.iter().filter(|&&b| b == 0xAA).count() as u32)
    };

    // Partial (field-wise) sanitization.
    let pool =
        m.define_global("session_pool", VarDecl::Buffer { size, align: 8 }, SegmentKind::Bss)?;
    m.mmap_file(pool, &vec![0xAA; size as usize])?; // the previous tenant's secret
    sanitize_fields_only(&mut m, pool, holey)?;
    let leaked_after_partial = measure(&m, pool)?;

    // Full sanitization.
    let mut m = build();
    let pool =
        m.define_global("session_pool", VarDecl::Buffer { size, align: 8 }, SegmentKind::Bss)?;
    m.mmap_file(pool, &vec![0xAA; size as usize])?;
    m.memset(pool, 0, size)?;
    let leaked_after_full = measure(&m, pool)?;

    Ok(PaddingLeakOutcome {
        object_size: size,
        field_bytes,
        padding_bytes: size - field_bytes,
        leaked_after_partial,
        leaked_after_full,
    })
}

/// The placement sites in these listings place *smaller-or-equal* tenants,
/// so no defense ever refuses them; treat a refusal as a wiring bug.
fn unwrap_placement(e: PlacementError) -> RuntimeError {
    match e {
        PlacementError::Runtime(r) => r,
        other => panic!("placement unexpectedly refused in info-leak scenario: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Defense;

    #[test]
    fn password_residue_leaks_without_sanitization() {
        let r = run_array(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded);
        let leaked = r.measurement("leaked_bytes").unwrap();
        assert!(leaked > 100.0, "expected large residue, got {leaked}");
        assert!(r.evidence.iter().any(|e| e.contains("residue")));
    }

    #[test]
    fn sanitization_stops_the_array_leak() {
        let r = run_array(&AttackConfig::with_defense(Defense::correct_coding())).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.measurement("leaked_bytes"), Some(0.0));
        assert_eq!(r.blocked_by.as_deref(), Some("memory sanitization"));
    }

    #[test]
    fn ssn_leaks_through_object_reuse() {
        let r = run_object(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded);
        assert_eq!(r.measurement("ssn_words_leaked"), Some(3.0));
    }

    #[test]
    fn sanitization_stops_the_object_leak() {
        let r = run_object(&AttackConfig::with_defense(Defense::correct_coding())).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.measurement("ssn_words_leaked"), Some(0.0));
    }

    #[test]
    fn padding_leak_matches_the_layout_arithmetic() {
        let o = run_padding_leak(&AttackConfig::paper()).unwrap();
        // char + double + char under the paper policy: 24 bytes, 10 of
        // them fields, 14 padding.
        assert_eq!(o.object_size, 24);
        assert_eq!(o.field_bytes, 10);
        assert_eq!(o.padding_bytes, 14);
        // Exactly the padding bytes survive the "efficient" sanitization.
        assert_eq!(o.leaked_after_partial, 14);
        assert_eq!(o.leaked_after_full, 0);
    }

    #[test]
    fn password_file_is_deterministic_and_seed_sensitive() {
        assert_eq!(password_file(1), password_file(1));
        assert_ne!(password_file(1), password_file(2));
        let f = password_file(7);
        assert!(f.starts_with(b"root:$1$"));
        assert!(f.len() <= POOL_SIZE as usize);
    }
}
