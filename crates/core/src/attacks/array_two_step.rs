//! E14/E15 — the two-step array overflow (§4, Listings 19/20).
//!
//! "In the first step of the attack, the attacker modifies the variable
//! that stores the size of the buffer to a value larger than the memory
//! pool size by overflowing an object ... In the next step, the user
//! passes in a maliciously crafted string to the buffer as it is done in
//! case of traditional buffer overflow scenarios."
//!
//! ```c++
//! bool sortAndAddUname(char *uname) {
//!   char mem_pool[n_students*(UNAME_SIZE+1)];
//!   int n_unames=0; Student stud; cin >> n_unames;
//!   if (n_unames > n_students) return;       // the "secure" check
//!   if (isGrad) {
//!     GradStudent *st = new (&stud) GradStudent();  // step 1
//!     // read st->ssn[] from std input
//!   }
//!   char *buf = new (mem_pool) char[n_unames*(UNAME_SIZE+1)];
//!   strncpy(buf, uname, n_unames*(UNAME_SIZE+1));  // step 2
//! }
//! ```
//!
//! "The use of strncpy is perfectly secure when we ignore the object
//! overflow scenario" — the copy length is bounds-checked against
//! `n_unames`, but `n_unames` itself was just rewritten through the
//! placed object's `ssn[]`.

use pnew_memory::SegmentKind;
use pnew_object::CxxType;
use pnew_runtime::{Machine, Privilege, RuntimeError, VarDecl};

use crate::attacks::{note_ret, place_array_site, place_object_site, ssn_input_loop};
use crate::protect::Arena;
use crate::report::{AttackConfig, AttackKind, AttackReport};
use crate::student::StudentWorld;

/// Per-username bytes (`UNAME_SIZE + 1`).
pub const UNAME_BYTES: u32 = 9;
/// Capacity of the pool in usernames (`n_students`).
pub const N_STUDENTS: u32 = 8;
/// The forged `n_unames` the attacker writes in step 1.
pub const FORGED_N_UNAMES: u32 = 100;

/// Pool size in bytes.
const POOL: u32 = N_STUDENTS * UNAME_BYTES;

/// Step 1: corrupt the stack local `n_unames` through the placed object.
fn step_one(
    m: &mut Machine,
    config: &AttackConfig,
    world: &StudentWorld,
    report: &mut AttackReport,
) -> Result<(), RuntimeError> {
    let stud = m.local_addr("stud")?;
    let n_unames = m.local_addr("n_unames")?;
    let ssn_base = stud + m.size_of(world.student)?;
    let idx = n_unames.offset_from(ssn_base) as u32 / 4;
    report.note(format!("step 1: n_unames at {n_unames} = ssn[{idx}]"));

    let arena = Arena::new(stud, m.size_of(world.student)?);
    let st = place_object_site(m, config, arena, world.grad, report)?;
    let script: Vec<i64> =
        (0..3).map(|i| if i == idx { i64::from(FORGED_N_UNAMES) } else { 0 }).collect();
    m.input_mut().extend(script);
    ssn_input_loop(m, &st)?;
    Ok(())
}

/// Builds the malicious `uname` payload: filler with the attacker's code
/// address at `target_off` (no NUL bytes before it, so `strncpy` keeps
/// copying).
fn payload(len: u32, target_off: Option<u32>, target: u32) -> Vec<u8> {
    let mut p = vec![b'A'; len as usize];
    if let Some(off) = target_off {
        let off = off as usize;
        if off + 4 <= p.len() {
            p[off..off + 4].copy_from_slice(&target.to_le_bytes());
        }
    }
    p
}

/// E14: the stack variant (Listing 19) — the flooded `strncpy` runs over
/// the pool into the canary/saved-FP/return-address words.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run_stack(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::ArrayTwoStepStack);
    let world = StudentWorld::plain();
    let mut m = world.machine(config);
    m.register_function("logRequest", Privilege::Normal);
    let system = m.register_function("system", Privilege::Privileged);
    // Jump 4 bytes past the entry so the little-endian address bytes carry
    // no NUL that would stop strncpy.
    let target = m.funcs().def(system).addr() + 4;

    // An outer frame stands in for main(), keeping the victim frame away
    // from the very top of the stack.
    m.push_frame("main", &[("argbuf", VarDecl::char_buf(4096))])?;
    m.push_frame(
        "sortAndAddUname",
        &[
            ("mem_pool", VarDecl::char_buf(POOL)),
            ("n_unames", VarDecl::Ty(CxxType::Int)),
            ("stud", VarDecl::Class(world.student)),
        ],
    )?;
    let pool = m.local_addr("mem_pool")?;
    let n_unames_addr = m.local_addr("n_unames")?;
    let ret_slot = m.frame()?.ret_slot();

    // cin >> n_unames; if (n_unames > n_students) return;  — passes.
    m.input_mut().push(5i64);
    let honest = m.cin_int()? as i32;
    m.space_mut().write_i32(n_unames_addr, honest)?;
    report.note(format!("honest n_unames = {honest} (≤ {N_STUDENTS}: check passes)"));

    step_one(&mut m, config, &world, &mut report)?;
    let n_now = m.space().read_i32(n_unames_addr)? as u32;
    report.measure("n_unames_after_step1", f64::from(n_now));

    // Step 2: char *buf = new (mem_pool) char[n_unames * UNAME_BYTES];
    let copy_len = n_now.saturating_mul(UNAME_BYTES);
    let arena = Arena::new(pool, POOL);
    let buf = place_array_site(&mut m, config, arena, CxxType::Char, copy_len, &mut report)?;
    let ret_off = (buf.addr() <= ret_slot && copy_len > 0)
        .then(|| ret_slot.offset_from(buf.addr()) as u32)
        .filter(|&off| off + 4 <= copy_len);
    let uname = payload(copy_len, ret_off, target.value());
    m.strncpy(buf.addr(), &uname, copy_len)?;
    report.note(format!("step 2: strncpy of {copy_len} bytes into the {POOL}-byte pool at {pool}"));

    let event = m.ret()?;
    note_ret(&mut report, &event.outcome);
    report.succeeded = event.outcome.is_hijack();
    Ok(report)
}

/// E15: the bss variant (Listing 20) — the pool is global; the flood
/// rewrites the globals declared after it (`n_staff`, and an
/// authorization flag, reproducing §4.4's "authentication mechanisms can
/// also be bypassed").
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run_bss(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::ArrayTwoStepBss);
    let world = StudentWorld::plain();
    let mut m = world.machine(config);

    // char mem_pool[...]; int n_staff; int authenticated;  (globals)
    let pool = m.define_global("mem_pool", VarDecl::char_buf(POOL), SegmentKind::Bss)?;
    let n_staff = m.define_global("n_staff", VarDecl::Ty(CxxType::Int), SegmentKind::Bss)?;
    let auth = m.define_global("authenticated", VarDecl::Ty(CxxType::Int), SegmentKind::Bss)?;
    m.space_mut().write_i32(n_staff, 12)?;
    m.space_mut().write_i32(auth, 0)?;

    m.push_frame(
        "sortAndAddUname",
        &[("n_unames", VarDecl::Ty(CxxType::Int)), ("stud", VarDecl::Class(world.student))],
    )?;
    let n_unames_addr = m.local_addr("n_unames")?;
    m.input_mut().push(5i64);
    let honest = m.cin_int()? as i32;
    m.space_mut().write_i32(n_unames_addr, honest)?;

    step_one(&mut m, config, &world, &mut report)?;
    let n_now = m.space().read_i32(n_unames_addr)? as u32;
    report.measure("n_unames_after_step1", f64::from(n_now));

    let copy_len = n_now.saturating_mul(UNAME_BYTES);
    let arena = Arena::new(pool, POOL);
    let buf = place_array_site(&mut m, config, arena, CxxType::Char, copy_len, &mut report)?;
    // The flood sets every overwritten word to 0x41414141 — enough to
    // corrupt the staff count and flip the auth flag to non-zero.
    let uname = payload(copy_len, None, 0);
    m.strncpy(buf.addr(), &uname, copy_len)?;

    let staff_after = m.space().read_i32(n_staff)?;
    let auth_after = m.space().read_i32(auth)?;
    report.note(format!("n_staff before: 12, after: {staff_after:#x}"));
    report.note(format!("authenticated before: 0, after: {auth_after:#x} (bypass)"));
    report.measure("n_staff_after", f64::from(staff_after));
    report.measure("auth_after", f64::from(auth_after));
    report.succeeded = staff_after != 12 && auth_after != 0;
    m.ret()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Defense;
    use pnew_runtime::StackProtection;

    #[test]
    fn stack_variant_detected_by_stackguard() {
        // The contiguous strncpy flood cannot skip the canary word (unlike
        // the selective ssn overwrite), so StackGuard catches it.
        let r = run_stack(&AttackConfig::paper()).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.detected_by.as_deref(), Some("stackguard"));
        assert_eq!(r.measurement("n_unames_after_step1"), Some(f64::from(FORGED_N_UNAMES)));
    }

    #[test]
    fn stack_variant_hijacks_without_protection() {
        for p in [StackProtection::None, StackProtection::FramePointer] {
            let r = run_stack(&AttackConfig::with_protection(p)).unwrap();
            assert!(r.succeeded, "under {p}: {}", r.verdict());
        }
    }

    #[test]
    fn bss_variant_bypasses_authentication() {
        let r = run_bss(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded, "{}", r.verdict());
        assert_eq!(r.measurement("auth_after"), Some(f64::from(0x4141_4141i32)));
    }

    #[test]
    fn checked_placement_blocks_both_steps() {
        for f in [run_stack, run_bss] {
            let r = f(&AttackConfig::with_defense(Defense::correct_coding())).unwrap();
            assert!(!r.succeeded);
            assert!(r.blocked_by.is_some());
            // Step 1 already fails: n_unames is never corrupted.
            assert_eq!(r.measurement("n_unames_after_step1"), Some(5.0));
        }
    }

    #[test]
    fn interceptor_blocks_the_bss_flood_but_not_the_stack_flood() {
        let cfg = AttackConfig::with_defense(Defense::intercept());
        // bss: pool is a known global → step 2 blocked.
        let r = run_bss(&cfg).unwrap();
        assert!(!r.succeeded);
        // stack: both arenas invisible → attack proceeds (and is then a
        // StackGuard question; disable it to see the hijack).
        let mut cfg2 = cfg;
        cfg2.protection = StackProtection::None;
        let r = run_stack(&cfg2).unwrap();
        assert!(r.succeeded);
    }
}
