//! E1b — internal object overflow (§3.4, Listing 10).
//!
//! ```c++
//! class MobilePlayer {
//!   Student stud1, stud2; int n;
//!   void addStudentPlayer(Student *stptr) {
//!     GradStudent *st = new (&stud1) GradStudent(stptr);
//!     ++n; [...] }
//! };
//! ```
//!
//! "In an internal overflow, the object overflow overwrites memory
//! locations that are internal to that object. … Internal overflows have
//! the capability to modify internal states of an object."
//!
//! Placing a `GradStudent` at `&this->stud1` puts `ssn[0..3]` over
//! `this->stud2.gpa` and `this->stud2.year` — every corrupted byte stays
//! **inside** the `MobilePlayer` footprint, which the scenario verifies
//! from the write trace. Success predicate: `stud2.gpa` (internal state)
//! changes and no write escapes the object.

use pnew_memory::SegmentKind;
use pnew_runtime::{RuntimeError, VarDecl};

use crate::attacks::place_object_site;
use crate::protect::Arena;
use crate::report::{AttackConfig, AttackKind, AttackReport};
use crate::student::StudentWorld;

/// Runs Listing 10.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::InternalOverflow);
    let world = StudentWorld::plain();
    let mut m = world.machine(config);

    // A MobilePlayer instance (the `this` object).
    let player =
        m.define_global("player", VarDecl::Class(world.mobile_player), SegmentKind::Bss)?;
    let player_size = m.size_of(world.mobile_player)?;
    let stud1 = m.field_addr(world.mobile_player, player, "stud1")?;
    let stud2_gpa = m.field_addr(world.mobile_player, player, "stud2.gpa")?;
    let n_addr = m.field_addr(world.mobile_player, player, "n")?;
    m.space_mut().write_f64(stud2_gpa, 2.8)?;
    m.space_mut().write_i32(n_addr, 1)?;
    report.note(format!(
        "MobilePlayer at {player} ({player_size} bytes); this->stud1 at {stud1}, this->stud2.gpa at {stud2_gpa}"
    ));

    let gpa_before = m.space().read_f64(stud2_gpa)?;
    m.space_mut().trace_mut().clear();

    // addStudentPlayer: place a GradStudent at &this->stud1.
    let arena = Arena::new(stud1, m.size_of(world.student)?);
    let st = place_object_site(&mut m, config, arena, world.grad, &mut report)?;

    // Listing 10 copy-constructs from the received record
    // (`GradStudent(stptr)`): every ssn word is written unconditionally,
    // with attacker-chosen values that decode to a forged 4.0 GPA.
    let forged = 4.0f64.to_bits();
    st.write_elem_i32(&mut m, "ssn", 0, (forged & 0xffff_ffff) as i32)?;
    st.write_elem_i32(&mut m, "ssn", 1, (forged >> 32) as i32)?;
    st.write_elem_i32(&mut m, "ssn", 2, 2026)?;

    let gpa_after = m.space().read_f64(stud2_gpa)?;
    report.measure("gpa_before", gpa_before);
    report.measure("gpa_after", gpa_after);
    report.note(format!("this->stud2.gpa before: {gpa_before}, after: {gpa_after}"));

    // The defining property of §3.4: every attack write stays inside the
    // MobilePlayer object.
    let writes: Vec<_> = m.space().trace().iter().copied().collect();
    let internal =
        writes.iter().all(|w| w.addr >= player && w.addr + w.len <= player + player_size);
    let escaped = writes
        .iter()
        .filter(|w| !(w.addr >= player && w.addr + w.len <= player + player_size))
        .count();
    report.measure("writes_escaping_object", escaped as f64);
    if internal {
        report.note(
            "all overflow writes landed inside the MobilePlayer footprint: internal overflow",
        );
    }

    report.succeeded = gpa_after != gpa_before && internal;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Defense;

    #[test]
    fn modifies_internal_state_without_escaping() {
        let r = run(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded, "{}", r.verdict());
        assert_eq!(r.measurement("gpa_after"), Some(4.0));
        assert_eq!(r.measurement("writes_escaping_object"), Some(0.0));
        assert!(r.evidence.iter().any(|e| e.contains("internal overflow")));
    }

    #[test]
    fn checked_placement_blocks_it() {
        let r = run(&AttackConfig::with_defense(Defense::correct_coding())).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.measurement("gpa_after"), Some(2.8));
    }

    #[test]
    fn interceptor_sees_the_containing_global() {
        // &this->stud1 is an *interior* pointer into the MobilePlayer
        // global; a library interceptor resolves the containing region and
        // has 40 − 0 = 40 bytes… but the remaining room from stud1 (offset
        // 0) is the whole object, so a 32-byte GradStudent FITS the
        // region even though it overflows the 16-byte member. The
        // interceptor is structurally blind to member boundaries — another
        // §5.2 residual exposure, asserted here.
        let r = run(&AttackConfig::with_defense(Defense::intercept())).unwrap();
        assert!(r.succeeded);
    }
}
