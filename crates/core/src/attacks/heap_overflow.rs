//! E2 — heap overflow (§3.5.1, Listing 12).
//!
//! ```c++
//! Student *stud; char *name;
//! int main() {
//!   GradStudent *st = new (stud) GradStudent();
//!   name = new char[16];
//!   strncpy(name, "abcdefghijklmno\0", 16);
//!   cout << "Before Attack: Name:" << setw(16) << name << endl;
//!   cin >> st->ssn[0]; cin >> st->ssn[1]; cin >> st->ssn[2];
//!   cout << "After Attack: Name:" << setw(16) << name << endl;
//! }
//! ```
//!
//! `stud`'s 16-byte heap block is immediately followed by the `name`
//! allocation; `ssn[0..3]` land at `stud + 16..28`, clobbering the
//! allocator header of `name` (bytes 16..24 past `stud`) and then
//! `name[0..4]` itself. Success predicate: the printed name changes.
//! The corrupted allocator header is reported as additional evidence — it
//! is exactly how real heap-metadata attacks begin, and §3.5.1 notes the
//! overflow "can further make the program more vulnerable to attacks that
//! can be carried out using heap overflows".

use pnew_object::CxxType;
use pnew_runtime::{RuntimeError, BLOCK_MAGIC, HEADER_SIZE};

use crate::attacks::place_object_site;
use crate::placement::{heap_new, heap_new_array};
use crate::protect::Arena;
use crate::report::{AttackConfig, AttackKind, AttackReport};
use crate::student::StudentWorld;

/// Runs Listing 12.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::HeapOverflow);
    let world = StudentWorld::plain();
    let mut m = world.machine(config);

    // Student *stud = new Student();  (the listing's placement target)
    let stud = heap_new(&mut m, world.student)?;
    // name = new char[16];
    let name = heap_new_array(&mut m, CxxType::Char, 16)?;
    m.strncpy(name.addr(), b"abcdefghijklmno\0", 16)?;
    let before = m.space().read_cstr(name.addr(), 16)?;
    m.print(format!("Before Attack: Name:{before}"));
    report.note(format!(
        "stud block at {}, name block at {} ({} bytes apart incl. header)",
        stud.addr(),
        name.addr(),
        name.addr().offset_from(stud.addr())
    ));

    // GradStudent *st = new (stud) GradStudent();
    let arena = Arena::new(stud.addr(), m.size_of(world.student)?);
    let st = place_object_site(&mut m, config, arena, world.grad, &mut report)?;

    // cin >> st->ssn[0..3]: attacker picks bytes that spell a new name
    // prefix ("HACK") after traversing the 8-byte allocator header.
    m.input_mut().extend([
        0x1111_1111i64,                          // ssn[0]: name's header size field
        0x2222_2222i64,                          // ssn[1]: name's header magic
        i64::from(i32::from_le_bytes(*b"HACK")), // ssn[2]: name[0..4]
    ]);
    for i in 0..3 {
        let v = m.cin_int()? as i32;
        st.write_elem_i32(&mut m, "ssn", i, v)?;
    }

    let after = m.space().read_cstr(name.addr(), 16)?;
    m.print(format!("After Attack: Name:{after}"));
    report.note(format!("name before: {before:?}, after: {after:?}"));
    report.succeeded = after != before;
    report.measure("name_bytes_changed", f64::from(u32::from(after != before) * 4));

    // Collateral: the allocator notices its clobbered header on free.
    if report.succeeded {
        match m.heap_free(name.addr()) {
            Err(RuntimeError::HeapCorruption { addr }) => {
                report.note(format!("free(name) aborts: heap block header at {addr} corrupted"));
                report.measure("heap_metadata_corrupted", 1.0);
            }
            _ => report.measure("heap_metadata_corrupted", 0.0),
        }
    }
    Ok(report)
}

/// Outcome of the E26 heap-metadata attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetadataAttackOutcome {
    /// The trusting allocator handed out a block overlapping the live
    /// victim.
    pub overlap_achieved: bool,
    /// The victim's content was rewritten through the overlapping block.
    pub victim_overwritten: bool,
    /// The hardened (checking) allocator aborted the same free instead.
    pub hardened_detects: bool,
}

/// E26 — heap-metadata exploitation (§3.5.1's "more vulnerable to attacks
/// that can be carried out using heap overflows", following the w00w00
/// tutorial the paper cites in §6).
///
/// The placement-new overflow of Listing 12 rewrites the *allocator
/// header* of the next block. Against a classic header-trusting allocator
/// the forged size poisons the free list on `free`, the next allocation
/// overlaps a still-live victim, and an innocent write through the new
/// buffer rewrites the victim — a full data-corruption primitive built
/// from one header. A hardened allocator (the default) aborts at `free`
/// instead.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run_metadata_attack(config: &AttackConfig) -> Result<MetadataAttackOutcome, RuntimeError> {
    let world = StudentWorld::plain();

    // --- classic (trusting) allocator ---------------------------------
    let mut m = world.machine(config);
    m.set_heap_trust_headers(true);

    // Block layout: [stud][request][victim].
    let stud = heap_new(&mut m, world.student)?;
    let request = heap_new_array(&mut m, CxxType::Char, 16)?;
    let victim = heap_new_array(&mut m, CxxType::Char, 16)?;
    m.strncpy(victim.addr(), b"role=user\0", 16)?;

    // Listing 12's overflow, aimed at the *header* of `request`: the
    // placed GradStudent's ssn[0..2] land on size, magic, and data.
    let student_size = m.size_of(world.student)?;
    let st = place_object_site(
        &mut m,
        config,
        Arena::new(stud.addr(), student_size),
        world.grad,
        &mut AttackReport::new(AttackKind::HeapOverflow),
    )?;
    let forged_len = 2 * (16 + HEADER_SIZE); // covers request AND victim
    st.write_elem_i32(&mut m, "ssn", 0, forged_len as i32)?;
    st.write_elem_i32(&mut m, "ssn", 1, BLOCK_MAGIC as i32)?;

    // The program legitimately frees its request buffer…
    let mut overlap_achieved = false;
    let mut victim_overwritten = false;
    if m.heap_free(request.addr()).is_ok() {
        // …and services the next request with a bigger buffer.
        let c = m.heap_alloc(forged_len - HEADER_SIZE)?;
        overlap_achieved = c <= victim.addr() && victim.addr() < c + (forged_len - HEADER_SIZE);
        // An innocent fill of the new buffer silently rewrites the victim.
        m.strncpy(c, &[b'A'; 63], forged_len - HEADER_SIZE)?;
        victim_overwritten = m.space().read_cstr(victim.addr(), 16)? != "role=user";
    }

    // --- hardened (checking) allocator --------------------------------
    let mut m = world.machine(config);
    let stud = heap_new(&mut m, world.student)?;
    let request = heap_new_array(&mut m, CxxType::Char, 16)?;
    let _victim = heap_new_array(&mut m, CxxType::Char, 16)?;
    let student_size = m.size_of(world.student)?;
    let st = place_object_site(
        &mut m,
        config,
        Arena::new(stud.addr(), student_size),
        world.grad,
        &mut AttackReport::new(AttackKind::HeapOverflow),
    )?;
    st.write_elem_i32(&mut m, "ssn", 0, forged_len as i32)?;
    st.write_elem_i32(&mut m, "ssn", 1, BLOCK_MAGIC as i32)?;
    let hardened_detects =
        matches!(m.heap_free(request.addr()), Err(RuntimeError::HeapCorruption { .. }));

    Ok(MetadataAttackOutcome { overlap_achieved, victim_overwritten, hardened_detects })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Defense;

    #[test]
    fn paper_config_changes_the_printed_name() {
        let r = run(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded);
        assert!(r.evidence.iter().any(|e| e.contains("HACK")));
        assert_eq!(r.measurement("heap_metadata_corrupted"), Some(1.0));
    }

    #[test]
    fn checked_placement_blocks() {
        let r = run(&AttackConfig::with_defense(Defense::correct_coding())).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.blocked_by.as_deref(), Some("checked placement"));
    }

    #[test]
    fn metadata_attack_overlaps_and_rewrites_under_the_classic_allocator() {
        let o = run_metadata_attack(&AttackConfig::paper()).unwrap();
        assert!(o.overlap_achieved);
        assert!(o.victim_overwritten);
        assert!(o.hardened_detects);
    }

    #[test]
    fn metadata_attack_needs_the_placement_overflow() {
        // With §5.1 checked placement the header is never reachable.
        let o =
            run_metadata_attack(&AttackConfig::with_defense(Defense::correct_coding())).unwrap();
        assert!(!o.overlap_achieved);
        assert!(!o.victim_overwritten);
        assert!(!o.hardened_detects); // nothing was corrupted to detect
    }

    #[test]
    fn interceptor_sees_heap_blocks_and_blocks() {
        let r = run(&AttackConfig::with_defense(Defense::intercept())).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.blocked_by.as_deref(), Some("library interceptor"));
    }
}
