//! E18 — denial of service through overflow (§4.4).
//!
//! "By modifying `n` to a non-positive value, or a very large positive
//! value, the loop can be controlled such that either it is never taken
//! or is iterated for a long time ... if the resources are
//! allocated/locked inside the loop, the attacker may crash the program
//! \[or\] effect memory leakage."
//!
//! The scenario reuses the Listing 15 geometry (the loop bound `n` sits
//! one padded word above the placed object) and measures three runs:
//!
//! 1. **baseline** — honest `n = 5`: the service loop runs 5 times;
//! 2. **starvation** — forged `n = 0`: the loop never runs (requests
//!    silently dropped);
//! 3. **flooding** — forged huge `n`: each iteration allocates a request
//!    buffer; the loop is driven until the heap allocator fails, crashing
//!    the program — the resource-exhaustion DoS;
//! 4. **descriptor exhaustion** — each iteration opens a log file and
//!    never closes it ("opening maximum number of files");
//! 5. **self-deadlock** — a single-request handler (honest bound 1) holds
//!    the database lock for its one pass; the corrupted bound makes the
//!    body re-enter and re-acquire it ("deadlocks (trying to lock the
//!    same resource multiple times)").

use pnew_object::CxxType;
use pnew_runtime::{Machine, RuntimeError, VarDecl};

use crate::attacks::{place_object_site, ssn_input_loop};
use crate::protect::Arena;
use crate::report::{AttackConfig, AttackKind, AttackReport};
use crate::student::StudentWorld;

/// Heap bytes allocated per loop iteration in the flooding run.
pub const REQUEST_BYTES: u32 = 1024;
/// Hard cap on simulated iterations (keeps the flood bounded in time).
pub const ITERATION_CAP: u32 = 1_000_000;

/// What the service loop does with each "request".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopWork {
    /// Pure computation.
    Nothing,
    /// Allocate a request buffer (heap pressure).
    Allocate,
    /// Open a per-request log file and leak the descriptor.
    OpenFile,
    /// Acquire the (non-reentrant) database lock without releasing it.
    TakeLock,
}

/// How a flooded run died, if it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopDeath {
    Survived,
    HeapExhausted,
    FdExhausted,
    Deadlock,
}

/// One run of the victim function with a forged (or honest) loop bound;
/// returns `(n_after, iterations, how_it_died)`.
fn victim_run(
    m: &mut Machine,
    config: &AttackConfig,
    world: &StudentWorld,
    honest_n: i32,
    forged_n: Option<i32>,
    work: LoopWork,
    report: &mut AttackReport,
) -> Result<(i32, u32, LoopDeath), RuntimeError> {
    m.push_frame(
        "serveRequests",
        &[("n", VarDecl::Ty(CxxType::Int)), ("stud", VarDecl::Class(world.student))],
    )?;
    let n_addr = m.local_addr("n")?;
    m.space_mut().write_i32(n_addr, honest_n)?;
    let stud = m.local_addr("stud")?;

    if let Some(forged) = forged_n {
        let arena = Arena::new(stud, m.size_of(world.student)?);
        let gs = place_object_site(m, config, arena, world.grad, report)?;
        // ssn[0] lands in the padding, ssn[1] on n (§3.7.2); a forged 0
        // must still be *written*, so the input loop writes sentinel
        // positives into the padding and the machine writes n directly
        // through ssn[1]'s alias when the forgery is non-positive.
        if forged > 0 {
            m.input_mut().extend([1i64, i64::from(forged), 0]);
            ssn_input_loop(m, &gs)?;
        } else {
            // The listings' guard `if (dssn > 0)` skips non-positive input,
            // so a starvation attacker sends the bound through a different
            // field write (e.g. the copy constructor path): model it as a
            // direct ssn[1] store.
            gs.write_elem_i32(m, "ssn", 1, forged)?;
        }
    }

    let n = m.space().read_i32(n_addr)?;
    let mut iterations = 0u32;
    let mut death = LoopDeath::Survived;
    let mut i = 0i32;
    while i < n && iterations < ITERATION_CAP {
        iterations += 1;
        match work {
            LoopWork::Nothing => {}
            LoopWork::Allocate => match m.heap_alloc(REQUEST_BYTES) {
                Ok(_) => {}
                Err(RuntimeError::HeapExhausted { .. }) => {
                    death = LoopDeath::HeapExhausted;
                    break;
                }
                Err(e) => return Err(e),
            },
            LoopWork::OpenFile => {
                // A per-request log file, never closed: the §4.4 leak.
                if m.resources_mut().open().is_err() {
                    death = LoopDeath::FdExhausted;
                    break;
                }
            }
            LoopWork::TakeLock => {
                // The body assumes it runs once per request; the corrupted
                // bound makes it re-enter.
                if m.resources_mut().lock("students.db").is_err() {
                    death = LoopDeath::Deadlock;
                    break;
                }
            }
        }
        i += 1;
    }
    m.ret()?;
    Ok((n, iterations, death))
}

/// Runs the three DoS measurements.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::DosLoop);
    let world = StudentWorld::plain();

    // Baseline: honest service.
    let mut m = world.machine(config);
    let (n, iters, _) =
        victim_run(&mut m, config, &world, 5, None, LoopWork::Nothing, &mut report)?;
    report.measure("baseline_n", f64::from(n));
    report.measure("baseline_iterations", f64::from(iters));

    // Starvation: n forged to 0 — the service loop never runs.
    let mut m = world.machine(config);
    let (n0, iters0, _) =
        victim_run(&mut m, config, &world, 5, Some(0), LoopWork::Nothing, &mut report)?;
    report.measure("starved_n", f64::from(n0));
    report.measure("starved_iterations", f64::from(iters0));
    report.note(format!("starvation: n forged to {n0}, loop ran {iters0} times"));

    // Flooding: n forged huge; each iteration allocates, until the heap
    // dies.
    let mut m = world.machine(config);
    let (nbig, itersbig, death) =
        victim_run(&mut m, config, &world, 5, Some(i32::MAX), LoopWork::Allocate, &mut report)?;
    let heap_exhausted = death == LoopDeath::HeapExhausted;
    report.measure("flooded_n", f64::from(nbig));
    report.measure("flooded_iterations", f64::from(itersbig));
    report.measure("heap_exhausted", f64::from(u8::from(heap_exhausted)));
    report.note(format!(
        "flooding: n forged to {nbig}; {itersbig} iterations allocated {} KiB before {}",
        u64::from(itersbig) * u64::from(REQUEST_BYTES) / 1024,
        if heap_exhausted { "the heap was exhausted (program crashes)" } else { "the cap" }
    ));

    // Descriptor exhaustion: each iteration opens a log file ("opening
    // maximum number of files").
    let mut m = world.machine(config);
    let (_, fd_iters, fd_death) =
        victim_run(&mut m, config, &world, 5, Some(i32::MAX), LoopWork::OpenFile, &mut report)?;
    let fd_exhausted = fd_death == LoopDeath::FdExhausted;
    report.measure("fd_exhausted", f64::from(u8::from(fd_exhausted)));
    report.measure("fds_opened", f64::from(m.resources().peak_open()));
    if fd_exhausted {
        report.note(format!(
            "descriptor exhaustion after {fd_iters} iterations ({} open files: limit {})",
            m.resources().peak_open(),
            m.resources().fd_limit()
        ));
    }

    // Self-deadlock: the lock in the loop body is re-acquired on the
    // second (attacker-enabled) iteration.
    let mut m = world.machine(config);
    let (_, lock_iters, lock_death) =
        victim_run(&mut m, config, &world, 1, Some(i32::MAX), LoopWork::TakeLock, &mut report)?;
    let deadlocked = lock_death == LoopDeath::Deadlock;
    report.measure("deadlocked", f64::from(u8::from(deadlocked)));
    if deadlocked {
        report.note(format!("deadlock on iteration {lock_iters}: \"students.db\" acquired twice"));
    }

    // The DoS succeeded if any corruption actually landed.
    report.succeeded = (iters0 == 0 && n0 == 0) || heap_exhausted || fd_exhausted || deadlocked;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Defense;

    #[test]
    fn starves_and_floods_the_service_loop() {
        let r = run(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded);
        assert_eq!(r.measurement("baseline_iterations"), Some(5.0));
        assert_eq!(r.measurement("starved_iterations"), Some(0.0));
        assert_eq!(r.measurement("heap_exhausted"), Some(1.0));
        // The flood allocated until the 1 MiB heap died: ~1000 iterations.
        let flooded = r.measurement("flooded_iterations").unwrap();
        assert!(flooded > 500.0 && flooded < 1100.0, "flooded = {flooded}");
        // §4.4's other vectors: the descriptor table (ulimit 1024) dies,
        // and the second loop iteration self-deadlocks.
        assert_eq!(r.measurement("fd_exhausted"), Some(1.0));
        assert_eq!(r.measurement("fds_opened"), Some(1024.0));
        assert_eq!(r.measurement("deadlocked"), Some(1.0));
        assert!(r.evidence.iter().any(|e| e.contains("deadlock on iteration 2")));
    }

    #[test]
    fn checked_placement_keeps_the_service_honest() {
        let r = run(&AttackConfig::with_defense(Defense::correct_coding())).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.measurement("starved_iterations"), Some(5.0));
        assert_eq!(r.measurement("heap_exhausted"), Some(0.0));
        assert_eq!(r.measurement("fd_exhausted"), Some(0.0));
        assert_eq!(r.measurement("deadlocked"), Some(0.0));
    }
}
