//! E19 — memory leaks (§4.5, Listing 23).
//!
//! ```c++
//! GradStudent *stud = NULL;
//! void addStudent() {
//!   for (int i=0; i<n_students; i+=2) {
//!     stud = new GradStudent(); [...]
//!     Student st = new (stud) Student();
//!     stud = null; [...] // free memory of st.
//!   }
//! }
//! ```
//!
//! "The amount of memory released from `st` is of the size of an instance
//! of `Student`, while the amount of memory allocated was for an instance
//! of `GradStudent`. The amount of memory leaked per iteration is the
//! difference in the size." With placement delete (§5.1) the whole block
//! is returned and nothing leaks. The scenario also drives the leak until
//! allocation fails, the crash §4.5 warns about ("an attacker may exploit
//! certain conditions of the system in order to hasten the process of
//! such leakage thus crashing the system").

use pnew_runtime::{MachineBuilder, RuntimeError};

use crate::protect::PlacementPool;
use crate::report::{AttackConfig, AttackKind, AttackReport};
use crate::student::StudentWorld;

/// Iterations of the measured leak loop (`n_students`).
pub const MEASURED_ITERATIONS: u32 = 100;
/// Cap for the drive-to-exhaustion phase (well past the exhaustion point
/// of the scaled 64 KiB heap under the vulnerable discipline).
const EXHAUSTION_CAP: u32 = 100_000;

/// Runs Listing 23.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::MemoryLeak);
    let world = StudentWorld::plain();
    // A scaled-down heap (64 KiB) keeps the drive-to-exhaustion phase
    // bounded; the per-iteration leak rate — the paper's measurement — is
    // independent of the heap size.
    let mut m = MachineBuilder::new()
        .policy(config.policy)
        .protection(config.protection)
        .shadow_stack(config.shadow_stack)
        .executable_stack(config.executable_stack)
        .seed(config.seed)
        .heap_size(64 * 1024)
        .build(world.registry.clone());
    let pool = PlacementPool::new(config.defense.placement_delete);

    let grad_size = m.size_of(world.grad)?;
    let student_size = m.size_of(world.student)?;
    report.note(format!(
        "sizeof(GradStudent) = {grad_size}, sizeof(Student) = {student_size}: expected leak {} bytes/iteration",
        grad_size - student_size
    ));

    // The measured loop.
    for _ in 0..MEASURED_ITERATIONS {
        let st = pool.allocate_and_replace(&mut m, world.grad, world.student)?;
        pool.release(&mut m, st)?;
    }
    let leaked = m.heap_stats().leaked_bytes;
    let per_iter = leaked as f64 / f64::from(MEASURED_ITERATIONS);
    report.measure("leaked_bytes", leaked as f64);
    report.measure("leak_per_iteration", per_iter);
    report.note(format!(
        "after {MEASURED_ITERATIONS} iterations: {leaked} bytes leaked ({per_iter} per iteration)"
    ));

    // Drive the leak to allocator death (the DoS).
    let mut crashed_after = None;
    for i in 0..EXHAUSTION_CAP {
        match pool.allocate_and_replace(&mut m, world.grad, world.student) {
            Ok(st) => pool.release(&mut m, st)?,
            Err(RuntimeError::HeapExhausted { .. }) => {
                crashed_after = Some(i);
                break;
            }
            Err(e) => return Err(e),
        }
    }
    match crashed_after {
        Some(i) => {
            report.note(format!(
                "heap exhausted after {} further iterations: allocation fails, program crashes",
                i
            ));
            report.measure("iterations_to_exhaustion", f64::from(MEASURED_ITERATIONS + i));
        }
        None => {
            report.note("heap never exhausted: no cumulative leak");
            report.measure("iterations_to_exhaustion", f64::INFINITY);
        }
    }

    report.succeeded = leaked > 0;
    if !report.succeeded && config.defense.placement_delete {
        report.blocked_by = Some("placement delete".to_owned());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Defense;

    #[test]
    fn leaks_the_size_difference_per_iteration_and_crashes() {
        let r = run(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded);
        // 32 - 16 = 16 bytes per iteration, exactly as §4.5 predicts.
        assert_eq!(r.measurement("leak_per_iteration"), Some(16.0));
        assert!(r.measurement("iterations_to_exhaustion").unwrap().is_finite());
    }

    #[test]
    fn placement_delete_stops_the_leak() {
        let r = run(&AttackConfig::with_defense(Defense::correct_coding())).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.measurement("leaked_bytes"), Some(0.0));
        assert_eq!(r.blocked_by.as_deref(), Some("placement delete"));
        assert!(r.measurement("iterations_to_exhaustion").unwrap().is_infinite());
    }
}
