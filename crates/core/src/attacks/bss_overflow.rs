//! E1 — data/bss object overflow (§3.5, Listing 11).
//!
//! ```c++
//! Student stud1, stud2;
//! bool addStudent (bool isGradStudent) {
//!   GradStudent *st;
//!   if (isGradStudent) {
//!     st = new (&stud1) GradStudent(gpa,...);   // ssn[] overlaps stud2
//!     st->setSSN(...);                          // user input
//!   } else {
//!     new (&stud2) Student(gpa,...);            // user input
//!   }
//! }
//! addStudent(false);
//! addStudent(true);  // attack: overwrites "gpa" of stud2
//! ```
//!
//! `stud1` and `stud2` are uninitialized globals, adjacent in the bss.
//! Placing a `GradStudent` at `&stud1` puts `ssn[0..3]` at
//! `stud1 + 16..28`, i.e. over `stud2.gpa` (8 bytes) and `stud2.year`.
//! Success predicate: `stud2.gpa` changes without ever being assigned
//! through `stud2`.

use pnew_memory::SegmentKind;
use pnew_runtime::{RuntimeError, VarDecl};

use crate::attacks::{place_object_site, ssn_input_loop};
use crate::placement::placement_new;
use crate::protect::Arena;
use crate::report::{AttackConfig, AttackKind, AttackReport};
use crate::student::StudentWorld;

/// The honest `gpa` a benign `addStudent(false)` stores into `stud2`.
pub const HONEST_GPA: f64 = 3.5;

/// Runs Listing 11.
///
/// # Errors
///
/// Fails only on scenario wiring problems, never on attack outcomes.
pub fn run(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::BssOverflow);
    let world = StudentWorld::plain();
    let mut m = world.machine(config);

    // Student stud1, stud2;  (bss: uninitialized globals, adjacent)
    let stud1 = m.define_global("stud1", VarDecl::Class(world.student), SegmentKind::Bss)?;
    let stud2 = m.define_global("stud2", VarDecl::Class(world.student), SegmentKind::Bss)?;
    report.note(format!("stud1 at {stud1}, stud2 at {stud2} (bss, adjacent)"));

    // Attacker input: three SSN words. The first two are the raw little-
    // endian halves of an IEEE double, so the overwritten gpa decodes to a
    // "meaningful" value — §3's point that overflows can be meaningful.
    let forged_gpa: f64 = 4.0;
    let bits = forged_gpa.to_bits();
    m.input_mut().extend([
        (bits & 0xffff_ffff) as i64,
        (bits >> 32) as i64,
        2025i64, // lands on stud2.year
    ]);

    // addStudent(false): benign placement of a Student at &stud2.
    let st2 = placement_new(&mut m, stud2, world.student)?;
    st2.write_f64(&mut m, "gpa", HONEST_GPA)?;
    st2.write_i32(&mut m, "year", 2008)?;
    st2.write_i32(&mut m, "semester", 2)?;
    let gpa_before = st2.read_f64(&mut m, "gpa")?;
    report.note(format!("stud2.gpa before attack: {gpa_before}"));

    // addStudent(true): the vulnerable placement at &stud1.
    let arena = Arena::new(stud1, m.size_of(world.student)?);
    let st1 = place_object_site(&mut m, config, arena, world.grad, &mut report)?;
    st1.write_f64(&mut m, "gpa", 4.0)?;
    ssn_input_loop(&mut m, &st1)?; // st->setSSN(user input)

    let gpa_after = st2.read_f64(&mut m, "gpa")?;
    let year_after = st2.read_i32(&mut m, "year")?;
    report.note(format!(
        "stud2.gpa after attack: {gpa_after}, stud2.year after attack: {year_after}"
    ));
    report.measure("gpa_before", gpa_before);
    report.measure("gpa_after", gpa_after);
    report.succeeded = gpa_after != gpa_before;
    if report.succeeded {
        report.note(format!(
            "attack wrote attacker-chosen gpa {gpa_after} into stud2 via stud1's ssn[]"
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Defense;

    #[test]
    fn paper_config_succeeds_with_meaningful_value() {
        let r = run(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded);
        assert_eq!(r.measurement("gpa_before"), Some(HONEST_GPA));
        assert_eq!(r.measurement("gpa_after"), Some(4.0));
        assert!(r.blocked_by.is_none());
        assert!(r.detected_by.is_none());
    }

    #[test]
    fn checked_placement_blocks() {
        let r = run(&AttackConfig::with_defense(Defense::correct_coding())).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.blocked_by.as_deref(), Some("checked placement"));
        assert_eq!(r.measurement("gpa_after"), Some(HONEST_GPA));
    }

    #[test]
    fn interceptor_sees_the_global_arena_and_blocks() {
        let r = run(&AttackConfig::with_defense(Defense::intercept())).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.blocked_by.as_deref(), Some("library interceptor"));
    }

    #[test]
    fn stackguard_is_irrelevant_to_bss_overflows() {
        // Canaries protect the stack; the bss attack succeeds regardless.
        let mut cfg = AttackConfig::paper();
        cfg.protection = pnew_runtime::StackProtection::StackGuard;
        assert!(run(&cfg).unwrap().succeeded);
        cfg.protection = pnew_runtime::StackProtection::None;
        assert!(run(&cfg).unwrap().succeeded);
    }
}
