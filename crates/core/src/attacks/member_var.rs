//! E9 — modification of member variables of other objects
//! (§3.8.1, Listing 16).
//!
//! ```c++
//! void addStudent(bool isGradStudent) {
//!   Student first = Student(3.9, 2008, 2);
//!   Student stud;
//!   if (isGradStudent) {
//!     GradStudent *gs = new (&stud) GradStudent();
//!     cin >> gs->ssn[0]; // overwrites first.gpa
//!     cin >> gs->ssn[1];
//!   }
//! }
//! ```
//!
//! `first` is declared before `stud`, so it sits just above it in the
//! frame; `ssn[0]`/`ssn[1]` alias the two halves of `first.gpa`. Success
//! predicate: `first.gpa` is no longer 3.9.

use pnew_runtime::{RuntimeError, VarDecl};

use crate::attacks::place_object_site;
use crate::protect::Arena;
use crate::report::{AttackConfig, AttackKind, AttackReport};
use crate::student::StudentWorld;

/// Runs Listing 16.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::MemberVarMod);
    let world = StudentWorld::plain();
    let mut m = world.machine(config);

    m.push_frame(
        "addStudent",
        &[("first", VarDecl::Class(world.student)), ("stud", VarDecl::Class(world.student))],
    )?;
    let first = m.local_addr("first")?;
    let stud = m.local_addr("stud")?;

    // Student first = Student(3.9, 2008, 2);
    let gpa_off = m.layout(world.student)?.offset_of("gpa")?;
    let year_off = m.layout(world.student)?.offset_of("year")?;
    let sem_off = m.layout(world.student)?.offset_of("semester")?;
    m.space_mut().write_f64(first + gpa_off, 3.9)?;
    m.space_mut().write_i32(first + year_off, 2008)?;
    m.space_mut().write_i32(first + sem_off, 2)?;
    report.note(format!("first at {first}, stud at {stud}; first.gpa at {}", first + gpa_off));

    let arena = Arena::new(stud, m.size_of(world.student)?);
    let gs = place_object_site(&mut m, config, arena, world.grad, &mut report)?;

    // Attacker forges a perfect 4.0 through the two ssn words.
    let forged = 4.0f64.to_bits();
    m.input_mut().extend([(forged & 0xffff_ffff) as i64, (forged >> 32) as i64]);
    for i in 0..2 {
        let v = m.cin_int()? as i32;
        gs.write_elem_i32(&mut m, "ssn", i, v)?;
    }

    let gpa_after = m.space().read_f64(first + gpa_off)?;
    report.note(format!("first.gpa before: 3.9, after: {gpa_after}"));
    report.measure("gpa_after", gpa_after);
    report.succeeded = gpa_after != 3.9;
    m.ret()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Defense;

    #[test]
    fn forges_a_perfect_gpa() {
        let r = run(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded);
        assert_eq!(r.measurement("gpa_after"), Some(4.0));
    }

    #[test]
    fn blocked_by_checked_placement() {
        let r = run(&AttackConfig::with_defense(Defense::correct_coding())).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.measurement("gpa_after"), Some(3.9));
    }

    #[test]
    fn canary_never_notices_intra_frame_overwrites() {
        // The overflow stays below the canary: StackGuard sees nothing.
        let r = run(&AttackConfig::paper()).unwrap();
        assert_eq!(r.detected_by, None);
    }
}
