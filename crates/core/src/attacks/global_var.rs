//! E7 — modification of data/bss variables (§3.7.1, Listing 14).
//!
//! ```c++
//! Student stud1; int noOfStudents = 0;
//! bool addStudent(bool isGradStudent) {
//!   GradStudent *st;
//!   if (isGradStudent) {
//!     st = new (&stud1) GradStudent(gpa,...); st->setSSN(...);
//!   } ...
//! }
//! addStudent(true);  // attack: overwrites "noOfStudents"
//! ```
//!
//! `noOfStudents` is declared right after `stud1`, so `ssn[0]` (at
//! `stud1 + 16`) aliases it. Success predicate: `noOfStudents` takes the
//! attacker's value. §4.4 builds its DoS on exactly this overwrite.

use pnew_memory::SegmentKind;
use pnew_object::CxxType;
use pnew_runtime::{RuntimeError, VarDecl};

use crate::attacks::{place_object_site, ssn_input_loop};
use crate::protect::Arena;
use crate::report::{AttackConfig, AttackKind, AttackReport};
use crate::student::StudentWorld;

/// The attacker's replacement for `noOfStudents`.
pub const FORGED_COUNT: i32 = 50_000;

/// Runs Listing 14.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::GlobalVarMod);
    let world = StudentWorld::plain();
    let mut m = world.machine(config);

    // Student stud1; int noOfStudents = 0;  (initialized → data segment)
    let stud1 = m.define_global("stud1", VarDecl::Class(world.student), SegmentKind::Data)?;
    let count = m.define_global("noOfStudents", VarDecl::Ty(CxxType::Int), SegmentKind::Data)?;
    m.space_mut().write_i32(count, 0)?;
    report.note(format!(
        "stud1 at {stud1}, noOfStudents at {count} (= stud1 + {})",
        count.offset_from(stud1)
    ));

    let before = m.space().read_i32(count)?;
    let arena = Arena::new(stud1, m.size_of(world.student)?);
    let st = place_object_site(&mut m, config, arena, world.grad, &mut report)?;

    m.input_mut().extend([i64::from(FORGED_COUNT), 0i64, 0i64]);
    ssn_input_loop(&mut m, &st)?;

    let after = m.space().read_i32(count)?;
    report.note(format!("noOfStudents before: {before}, after: {after}"));
    report.measure("count_before", f64::from(before));
    report.measure("count_after", f64::from(after));
    report.succeeded = after == FORGED_COUNT;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Defense;

    #[test]
    fn overwrites_the_counter() {
        let r = run(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded);
        assert_eq!(r.measurement("count_before"), Some(0.0));
        assert_eq!(r.measurement("count_after"), Some(f64::from(FORGED_COUNT)));
    }

    #[test]
    fn blocked_by_checked_placement_and_interceptor() {
        for d in [Defense::correct_coding(), Defense::intercept()] {
            let r = run(&AttackConfig::with_defense(d)).unwrap();
            assert!(!r.succeeded, "defense {} should block", d.label());
            assert_eq!(r.measurement("count_after"), Some(0.0));
        }
    }
}
