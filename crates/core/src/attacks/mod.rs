//! The attack suite: one runnable scenario per attack in the paper.
//!
//! Each module transcribes one of the paper's listings onto the simulated
//! machine, drives it with scripted attacker input, and evaluates the
//! paper's own success predicate (victim word changed, control hijacked,
//! bytes leaked, memory stranded, …). Every scenario accepts an
//! [`AttackConfig`] so the same program can be run across the
//! protection/defense matrix of experiment E20.
//!
//! | Module | Experiment | Paper reference |
//! |---|---|---|
//! | [`bss_overflow`] | E1 | §3.5, Listing 11 |
//! | [`internal_overflow`] | E1b | §3.4, Listing 10 |
//! | [`heap_overflow`] | E2 | §3.5.1, Listing 12 |
//! | [`stack_smash`] | E3/E4 | §3.6.1, Listing 13 (+ §5.2 bypass) |
//! | [`arc_injection`] | E5 | §3.6.2 |
//! | [`code_injection`] | E6 | §3.6.2 |
//! | [`global_var`] | E7 | §3.7.1, Listing 14 |
//! | [`stack_local`] | E8 | §3.7.2, Listing 15 |
//! | [`member_var`] | E9 | §3.8.1, Listing 16 |
//! | [`vptr_subterfuge`] | E10/E11 | §3.8.2 |
//! | [`fnptr_subterfuge`] | E12 | §3.9, Listing 17 |
//! | [`varptr_subterfuge`] | E13 | §3.10, Listing 18 |
//! | [`array_two_step`] | E14/E15 | §4.1/§4.2, Listings 19/20 |
//! | [`info_leak`] | E16/E17 | §4.3, Listings 21/22 |
//! | [`dos_loop`] | E18 | §4.4 |
//! | [`memory_leak`] | E19 | §4.5, Listing 23 |
//! | [`aslr`] | E24 | ASLR ablation (extension) |

pub mod arc_injection;
pub mod array_two_step;
pub mod aslr;
pub mod bss_overflow;
pub mod code_injection;
pub mod dos_loop;
pub mod fnptr_subterfuge;
pub mod global_var;
pub mod heap_overflow;
pub mod info_leak;
pub mod internal_overflow;
pub mod member_var;
pub mod memory_leak;
pub mod stack_local;
pub mod stack_smash;
pub mod varptr_subterfuge;
pub mod vptr_subterfuge;

use pnew_object::{ClassId, CxxType};
use pnew_runtime::{ControlOutcome, Machine, RuntimeError};

use crate::placement::{heap_new, heap_new_array, ArrayRef, ObjRef};
use crate::protect::{Arena, PlacementError};
use crate::report::{AttackConfig, AttackKind, AttackReport};

/// A runnable attack entry for harnesses (protection matrix, benches).
pub type AttackFn = fn(&AttackConfig) -> Result<AttackReport, RuntimeError>;

/// The catalogue of all scenarios, in experiment order.
pub fn catalogue() -> Vec<(AttackKind, AttackFn)> {
    vec![
        (AttackKind::BssOverflow, bss_overflow::run as AttackFn),
        (AttackKind::InternalOverflow, internal_overflow::run),
        (AttackKind::HeapOverflow, heap_overflow::run),
        (AttackKind::StackSmash, stack_smash::run_naive),
        (AttackKind::CanaryBypass, stack_smash::run_selective),
        (AttackKind::ArcInjection, arc_injection::run),
        (AttackKind::CodeInjection, code_injection::run),
        (AttackKind::GlobalVarMod, global_var::run),
        (AttackKind::StackLocalMod, stack_local::run),
        (AttackKind::MemberVarMod, member_var::run),
        (AttackKind::VptrSubterfuge, vptr_subterfuge::run_bss),
        (AttackKind::FnPtrSubterfuge, fnptr_subterfuge::run),
        (AttackKind::VarPtrSubterfuge, varptr_subterfuge::run),
        (AttackKind::ArrayTwoStepStack, array_two_step::run_stack),
        (AttackKind::ArrayTwoStepBss, array_two_step::run_bss),
        (AttackKind::InfoLeakArray, info_leak::run_array),
        (AttackKind::InfoLeakObject, info_leak::run_object),
        (AttackKind::DosLoop, dos_loop::run),
        (AttackKind::MemoryLeak, memory_leak::run),
    ]
}

/// Runs the whole catalogue under one configuration.
///
/// # Errors
///
/// Propagates scenario wiring failures (never attack outcomes).
pub fn run_all(config: &AttackConfig) -> Result<Vec<AttackReport>, RuntimeError> {
    catalogue().into_iter().map(|(_, f)| f(config)).collect()
}

/// A defended placement call site for objects: applies the configured
/// [`PlacementMode`](crate::PlacementMode); when the defense refuses, runs
/// the §5.1 fallback (heap `new`) and records the block in the report.
pub(crate) fn place_object_site(
    machine: &mut Machine,
    config: &AttackConfig,
    arena: Arena,
    class: ClassId,
    report: &mut AttackReport,
) -> Result<ObjRef, RuntimeError> {
    match config.defense.placement.place_object(machine, arena, class) {
        Ok(obj) => Ok(obj),
        Err(PlacementError::SizeExceedsArena { placed, arena: have }) => {
            report.blocked_by = Some(config.defense.placement.defense_name().to_owned());
            report.note(format!(
                "placement of {placed} bytes into {have}-byte arena refused; §5.1 fallback to heap new"
            ));
            heap_new(machine, class)
        }
        Err(PlacementError::Misaligned { addr, required }) => {
            report.blocked_by = Some(config.defense.placement.defense_name().to_owned());
            report.note(format!(
                "placement at {addr} violates {required}-byte alignment; §5.1 fallback to heap new"
            ));
            heap_new(machine, class)
        }
        Err(PlacementError::Runtime(e)) => Err(e),
    }
}

/// A defended placement call site for arrays, with the same fallback.
pub(crate) fn place_array_site(
    machine: &mut Machine,
    config: &AttackConfig,
    arena: Arena,
    elem: CxxType,
    len: u32,
    report: &mut AttackReport,
) -> Result<ArrayRef, RuntimeError> {
    match config.defense.placement.place_array(machine, arena, elem.clone(), len) {
        Ok(arr) => Ok(arr),
        Err(PlacementError::SizeExceedsArena { placed, arena: have }) => {
            report.blocked_by = Some(config.defense.placement.defense_name().to_owned());
            report.note(format!(
                "array placement of {placed} bytes into {have}-byte arena refused; fallback to heap new[]"
            ));
            heap_new_array(machine, elem, len)
        }
        Err(PlacementError::Misaligned { .. }) => {
            report.blocked_by = Some(config.defense.placement.defense_name().to_owned());
            heap_new_array(machine, elem, len)
        }
        Err(PlacementError::Runtime(e)) => Err(e),
    }
}

/// The listings' input loop
/// `while (++i < 3) { cin >> dssn; if (dssn > 0) gs->ssn[i] = dssn; }` —
/// non-positive values leave the slot untouched, which is the §5.2
/// selective-overwrite primitive.
pub(crate) fn ssn_input_loop(machine: &mut Machine, gs: &ObjRef) -> Result<(), RuntimeError> {
    for i in 0..3 {
        let dssn = machine.cin_int()?;
        if dssn > 0 {
            gs.write_elem_i32(machine, "ssn", i, dssn as i32)?;
        }
    }
    Ok(())
}

/// Records a return event in a report: detection, hijack evidence.
pub(crate) fn note_ret(report: &mut AttackReport, outcome: &ControlOutcome) {
    match outcome {
        ControlOutcome::CanaryDetected { .. } => {
            report.detected_by = Some("stackguard".to_owned());
            report.note("*** stack smashing detected ***: program terminated");
        }
        ControlOutcome::ShadowStackDetected { .. } => {
            report.detected_by = Some("shadow stack".to_owned());
            report.note("return-address stack mismatch: program terminated");
        }
        ControlOutcome::Hijacked { name, privileged, target, .. } => {
            report.note(format!(
                "control transferred to {name}{} at {target}",
                if *privileged { " [privileged]" } else { "" }
            ));
        }
        ControlOutcome::ShellCode { addr, segment } => {
            report.note(format!("injected code executed at {addr} in the {segment} segment"));
        }
        ControlOutcome::Fault { addr, reason } => {
            report.note(format!("program crashed: fault at {addr} ({reason})"));
        }
        ControlOutcome::Return => {
            report.note("function returned normally");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Defense;

    #[test]
    fn catalogue_covers_all_kinds() {
        let kinds: Vec<AttackKind> = catalogue().into_iter().map(|(k, _)| k).collect();
        assert_eq!(kinds, AttackKind::ALL.to_vec());
    }

    #[test]
    fn run_all_paper_config_mostly_succeeds() {
        // Under the paper's platform every attack demonstrates, except the
        // ones the paper itself reports as stopped: the naive stack smash
        // (StackGuard) and code injection (NX stack).
        let reports = run_all(&AttackConfig::paper()).unwrap();
        for r in &reports {
            match r.kind {
                AttackKind::StackSmash | AttackKind::ArrayTwoStepStack => {
                    assert!(
                        r.detected_by.as_deref() == Some("stackguard"),
                        "{}: expected stackguard detection, got {}",
                        r.kind,
                        r.verdict()
                    );
                }
                AttackKind::CodeInjection => {
                    assert!(!r.succeeded, "{}: NX stack should stop shellcode", r.kind);
                }
                _ => assert!(r.succeeded, "{}: expected success, got {}", r.kind, r.verdict()),
            }
        }
    }

    #[test]
    fn run_all_correct_coding_blocks_everything() {
        let cfg = AttackConfig::with_defense(Defense::correct_coding());
        let reports = run_all(&cfg).unwrap();
        for r in &reports {
            assert!(
                !r.succeeded,
                "{}: correct coding should stop the attack, got {}",
                r.kind,
                r.verdict()
            );
        }
    }
}
