//! E3/E4 — stack overflow and return-address modification
//! (§3.6.1, Listing 13; selective canary bypass per §5.2).
//!
//! ```c++
//! void addStudent (bool isGradStudent) {
//!   Student stud;
//!   if (isGradStudent) {
//!     GradStudent *gs = new (&stud) GradStudent();
//!     int i=-1, dssn=0;
//!     while (++i < 3) { cin >> dssn; if (dssn>0) gs->ssn[i]=dssn; }
//!   }
//! }
//! ```
//!
//! With `stud` the only local, `ssn[i]` lands on (low to high) the canary,
//! the saved frame pointer and the return address — or directly on the
//! return address when those are absent, exactly the word arithmetic the
//! paper spells out.
//!
//! * [`run_naive`] supplies three positive values: every word is
//!   overwritten, so gcc's StackGuard detects the smash — the paper's
//!   "our attempts at stack-smashing were detected" result.
//! * [`run_selective`] supplies non-positive values for the slots before
//!   the return address: "We then carried out experiments to see whether
//!   we could selectively overwrite the return addresses, and avoid
//!   modification of the canary. We succeeded, and StackGuard could not
//!   detect it."

use pnew_runtime::{Machine, Privilege, RuntimeError, VarDecl};

use crate::attacks::{note_ret, place_object_site, ssn_input_loop};
use crate::placement::ObjRef;
use crate::protect::Arena;
use crate::report::{AttackConfig, AttackKind, AttackReport};
use crate::student::StudentWorld;

/// Sets up the Listing 13 frame and placement; returns the placed object
/// and the attacker's replacement return target.
fn setup(
    config: &AttackConfig,
    report: &mut AttackReport,
) -> Result<(Machine, ObjRef, u32, i64), RuntimeError> {
    let world = StudentWorld::plain();
    let mut m = world.machine(config);
    let evil = m.register_function("system", Privilege::Privileged);
    let evil_addr = m.funcs().def(evil).addr();

    // main() calls addStudent(): the outer frame keeps the victim frame
    // away from the very top of the stack, as in a real process.
    m.push_frame("main", &[("argbuf", VarDecl::char_buf(256))])?;
    m.push_frame("addStudent", &[("stud", VarDecl::Class(world.student))])?;
    let stud = m.local_addr("stud")?;
    let ret_slot = m.frame()?.ret_slot();
    // Which ssn index aliases the return address: 0 with no protection,
    // 1 with a saved FP, 2 under StackGuard (§3.6.1's exact words).
    let ssn_base = stud + m.size_of(world.student)?;
    let ret_index = ret_slot.offset_from(ssn_base) as u32 / 4;
    report.note(format!(
        "frame: stud at {stud}, ssn[] from {ssn_base}, return address at {ret_slot} (= ssn[{ret_index}])"
    ));

    let arena = Arena::new(stud, m.size_of(world.student)?);
    let gs = place_object_site(&mut m, config, arena, world.grad, report)?;
    Ok((m, gs, ret_index, i64::from(evil_addr.value())))
}

fn finish(mut m: Machine, mut report: AttackReport) -> Result<AttackReport, RuntimeError> {
    let event = m.ret()?;
    note_ret(&mut report, &event.outcome);
    report
        .measure("canary_intact", event.canary_intact.map_or(f64::NAN, |b| f64::from(u8::from(b))));
    report.succeeded = event.outcome.is_hijack();
    Ok(report)
}

/// E3: the naive smash — all three `ssn` words positive, canary clobbered.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run_naive(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::StackSmash);
    let (mut m, gs, _, evil) = setup(config, &mut report)?;
    // Three positive inputs: whatever protection words exist are smashed.
    m.input_mut().extend([evil, evil, evil]);
    ssn_input_loop(&mut m, &gs)?;
    finish(m, report)
}

/// E4: the selective overwrite — non-positive inputs skip every word
/// before the return address, defeating StackGuard.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run_selective(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::CanaryBypass);
    let (mut m, gs, ret_index, evil) = setup(config, &mut report)?;
    // "This can be achieved in this case by supplying non-positive values
    // for first two iterations of the while loop. The third one would be
    // supplied with the new return address."
    let script: Vec<i64> = (0..3).map(|i| if i == ret_index { evil } else { -1 }).collect();
    report.note(format!("attacker input script: {script:?}"));
    m.input_mut().extend(script);
    ssn_input_loop(&mut m, &gs)?;
    finish(m, report)
}

/// E4b: the canary-replay bypass — the *other* classic way around
/// StackGuard, built from the paper's own §4.3 leak primitive.
///
/// A helper call leaves its canary word in stale stack memory below the
/// stack pointer; an unsanitized stack-arena reuse (the Listing 21
/// pattern, on the stack) echoes those bytes to the attacker, who then
/// mounts the *naive* smash but writes the canary's own value back over
/// it. The check at `ret` compares values, not writes — it passes.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run_canary_replay(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::CanaryBypass);
    let world = StudentWorld::plain();
    let mut m = world.machine(config);
    let evil = m.register_function("system", Privilege::Privileged);
    let evil_addr = m.funcs().def(evil).addr();

    m.push_frame("main", &[("argbuf", VarDecl::char_buf(256))])?;

    // Step 1 — the leak: a helper runs and returns; its canary word stays
    // in stale stack memory. The service then echoes a stale buffer from
    // that region (unsanitized reuse, §4.3) and the attacker reads the
    // canary out of it.
    m.push_frame("logRequest", &[("scratch", VarDecl::char_buf(64))])?;
    let helper_canary_slot = m.frame()?.canary_slot();
    m.ret()?;
    let leaked_canary = match helper_canary_slot {
        Some(slot) => {
            let v = m.space().read_u32(slot)?;
            report
                .note(format!("stale helper frame echoed; canary 0x{v:08x} recovered from {slot}"));
            Some(v)
        }
        None => None, // no canary on this platform: nothing to replay
    };

    // Step 2 — the naive smash, but replaying the leaked canary over
    // itself.
    m.push_frame("addStudent", &[("stud", VarDecl::Class(world.student))])?;
    let stud = m.local_addr("stud")?;
    let arena = Arena::new(stud, m.size_of(world.student)?);
    let gs = place_object_site(&mut m, config, arena, world.grad, &mut report)?;

    // Copy-constructed writes (Listing 6 semantics): unconditional stores.
    let fill = |i: u32| -> i32 {
        match (i, leaked_canary) {
            (0, Some(c)) => c as i32, // the replayed canary
            _ if i == 2 || leaked_canary.is_none() && i == 0 => {
                evil_addr.value() as i32 // return address slot
            }
            _ => 0x4141_4141, // saved FP: garbage is fine
        }
    };
    for i in 0..3 {
        gs.write_elem_i32(&mut m, "ssn", i, fill(i))?;
    }

    let event = m.ret()?;
    note_ret(&mut report, &event.outcome);
    report
        .measure("canary_intact", event.canary_intact.map_or(f64::NAN, |b| f64::from(u8::from(b))));
    report.succeeded = event.outcome.is_hijack();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Defense;
    use pnew_runtime::StackProtection;

    #[test]
    fn naive_smash_is_detected_by_stackguard() {
        // The paper: "our attempts at stack-smashing were detected by the
        // code that was compiled by gcc, and the program was terminated."
        let r = run_naive(&AttackConfig::paper()).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.detected_by.as_deref(), Some("stackguard"));
        assert_eq!(r.measurement("canary_intact"), Some(0.0));
    }

    #[test]
    fn naive_smash_succeeds_without_protection() {
        let r = run_naive(&AttackConfig::with_protection(StackProtection::None)).unwrap();
        assert!(r.succeeded);
        assert!(r.evidence.iter().any(|e| e.contains("ssn[0]")));
    }

    #[test]
    fn naive_smash_succeeds_with_fp_only() {
        let r = run_naive(&AttackConfig::with_protection(StackProtection::FramePointer)).unwrap();
        assert!(r.succeeded);
        // "If the frame pointer is saved, then ssn[1] would overwrite the
        // return address."
        assert!(r.evidence.iter().any(|e| e.contains("ssn[1]")));
    }

    #[test]
    fn selective_overwrite_defeats_stackguard() {
        // The paper's §5.2 experiment: canary untouched, hijack succeeds.
        let r = run_selective(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded, "{}", r.verdict());
        assert_eq!(r.detected_by, None);
        assert_eq!(r.measurement("canary_intact"), Some(1.0));
        assert!(r.evidence.iter().any(|e| e.contains("ssn[2]")));
    }

    #[test]
    fn canary_replay_defeats_stackguard_with_every_word_overwritten() {
        // Unlike the selective overwrite, every protection word IS written
        // — the canary just gets its own value back.
        let r = run_canary_replay(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded, "{}", r.verdict());
        assert_eq!(r.measurement("canary_intact"), Some(1.0));
        assert!(r.evidence.iter().any(|e| e.contains("recovered")));
    }

    #[test]
    fn canary_replay_without_a_canary_still_hijacks() {
        let r = run_canary_replay(&AttackConfig::with_protection(StackProtection::None)).unwrap();
        assert!(r.succeeded);
    }

    #[test]
    fn shadow_stack_stops_the_canary_replay() {
        let mut cfg = AttackConfig::paper();
        cfg.shadow_stack = true;
        let r = run_canary_replay(&cfg).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.detected_by.as_deref(), Some("shadow stack"));
    }

    #[test]
    fn shadow_stack_stops_the_selective_overwrite() {
        let mut cfg = AttackConfig::paper();
        cfg.shadow_stack = true;
        let r = run_selective(&cfg).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.detected_by.as_deref(), Some("shadow stack"));
    }

    #[test]
    fn checked_placement_blocks_both_variants() {
        let cfg = AttackConfig::with_defense(Defense::correct_coding());
        let r = run_naive(&cfg).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.blocked_by.as_deref(), Some("checked placement"));
        let r = run_selective(&cfg).unwrap();
        assert!(!r.succeeded);
    }

    #[test]
    fn interceptor_is_blind_to_stack_arenas() {
        // §5.2's caveat reproduced: the library cannot bound a stack local,
        // so the bypass still works under interception.
        let cfg = AttackConfig::with_defense(Defense::intercept());
        let r = run_selective(&cfg).unwrap();
        assert!(r.succeeded);
        assert_eq!(r.blocked_by, None);
    }
}
