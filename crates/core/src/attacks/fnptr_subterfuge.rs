//! E12 — function pointer subterfuge (§3.9, Listing 17).
//!
//! ```c++
//! void addStudent(bool isGradStudent) {
//!   bool (*createStudentAccount)(char *uid) = NULL;
//!   Student stud;
//!   ...
//!   if (createStudentAccount != NULL) createStudentAccount(...);
//! }
//! ```
//!
//! The NULL function pointer is a local declared before `stud`; the
//! object overflow rewrites it, and the guard `!= NULL` — meant to keep
//! the call dead — now *enables* it: "such an attack also enables
//! invocation of a method that was not supposed to be called in a given
//! context."

use pnew_object::CxxType;
use pnew_runtime::{DispatchOutcome, Privilege, RuntimeError, VarDecl};

use crate::attacks::{place_object_site, ssn_input_loop};
use crate::protect::Arena;
use crate::report::{AttackConfig, AttackKind, AttackReport};
use crate::student::StudentWorld;

/// Runs Listing 17.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::FnPtrSubterfuge);
    let world = StudentWorld::plain();
    let mut m = world.machine(config);
    let target = m.register_function("grantAccount", Privilege::Privileged);
    let target_addr = m.funcs().def(target).addr();

    // bool (*createStudentAccount)(char*) = NULL; Student stud;
    m.push_frame(
        "addStudent",
        &[
            ("createStudentAccount", VarDecl::Ty(CxxType::ptr(CxxType::Char))),
            ("stud", VarDecl::Class(world.student)),
        ],
    )?;
    let fnptr = m.local_addr("createStudentAccount")?;
    m.space_mut().write_ptr(fnptr, pnew_memory::VirtAddr::NULL)?;
    let stud = m.local_addr("stud")?;
    let ssn_base = stud + m.size_of(world.student)?;
    let fn_index = fnptr.offset_from(ssn_base) as u32 / 4;
    report.note(format!("function pointer at {fnptr} = ssn[{fn_index}] of the placed object"));

    let arena = Arena::new(stud, m.size_of(world.student)?);
    let gs = place_object_site(&mut m, config, arena, world.grad, &mut report)?;

    let script: Vec<i64> =
        (0..3).map(|i| if i == fn_index { i64::from(target_addr.value()) } else { 0 }).collect();
    m.input_mut().extend(script);
    ssn_input_loop(&mut m, &gs)?;

    // if (createStudentAccount != NULL) createStudentAccount(...);
    let value = m.space().read_ptr(fnptr)?;
    if value.is_null() {
        report.note("pointer still NULL: the guarded call stays dead");
        report.succeeded = false;
    } else {
        let outcome = m.call_function_pointer(value, None);
        report.note(format!("guard passed; call through pointer: {outcome}"));
        report.succeeded = matches!(&outcome, DispatchOutcome::Hijacked { privileged: true, .. });
    }
    m.ret()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Defense;

    #[test]
    fn null_pointer_becomes_a_live_privileged_call() {
        let r = run(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded, "{}", r.verdict());
        assert!(r.evidence.iter().any(|e| e.contains("guard passed")));
    }

    #[test]
    fn checked_placement_keeps_the_pointer_null() {
        let r = run(&AttackConfig::with_defense(Defense::correct_coding())).unwrap();
        assert!(!r.succeeded);
        assert!(r.evidence.iter().any(|e| e.contains("still NULL")));
    }

    #[test]
    fn interceptor_misses_the_stack_arena() {
        let r = run(&AttackConfig::with_defense(Defense::intercept())).unwrap();
        assert!(r.succeeded);
    }
}
