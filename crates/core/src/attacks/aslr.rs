//! E24 — ASLR ablation.
//!
//! The paper's platform (Ubuntu 10.04 in its default 32-bit setup of the
//! experiments) gives the attacker a *known* memory layout: every attack
//! that redirects control supplies an **absolute** address (`&system`,
//! the shellcode address). This experiment asks the natural follow-on
//! question: which of the placement-new attacks survive address-space
//! layout randomization?
//!
//! The attacker's knowledge is modeled honestly: addresses are computed
//! on a *reference* machine with the paper's fixed layout, then replayed
//! against machines whose segments were slid by seeded ASLR. Two attack
//! families are measured:
//!
//! * **control-flow** (the Listing 13 selective overwrite): needs the
//!   absolute address of the target code — collapses to crashes under
//!   ASLR;
//! * **data-only** (the Listing 14 counter overwrite): the overflow is
//!   *relative* (object adjacency) and the payload is a plain value —
//!   completely unaffected by ASLR.
//!
//! That contrast is the classic result: ASLR stops the control-flow half
//! of the catalogue and none of the data-only half.

use pnew_memory::SegmentKind;
use pnew_object::LayoutPolicy;
use pnew_runtime::{
    ControlOutcome, MachineBuilder, Privilege, RuntimeError, StackProtection, VarDecl,
};

use crate::placement::placement_new;
use crate::student::StudentWorld;

/// Aggregate outcome of an ASLR trial batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AslrOutcome {
    /// Number of trials run.
    pub trials: u32,
    /// Trials where the attack achieved its goal.
    pub successes: u32,
    /// Trials that crashed the victim (control landed nowhere useful).
    pub crashes: u32,
    /// Trials caught by a protection mechanism.
    pub detected: u32,
}

impl AslrOutcome {
    /// Success rate in `[0, 1]`.
    pub fn success_rate(&self) -> f64 {
        f64::from(self.successes) / f64::from(self.trials.max(1))
    }
}

fn machine_for(world: &StudentWorld, aslr: Option<u64>) -> pnew_runtime::Machine {
    let mut b =
        MachineBuilder::new().policy(LayoutPolicy::paper()).protection(StackProtection::StackGuard);
    if let Some(seed) = aslr {
        b = b.aslr(seed);
    }
    b.build(world.registry.clone())
}

/// The attacker's intelligence: `&system` read off the fixed reference
/// layout (what an exploit hardcodes).
fn assumed_system_addr(world: &StudentWorld) -> u32 {
    let mut reference = machine_for(world, None);
    let id = reference.register_function("system", Privilege::Privileged);
    reference.funcs().def(id).addr().value()
}

/// Runs `trials` control-flow attacks (Listing 13 selective overwrite with
/// a hardcoded `&system`) against fresh machines; with `aslr` each machine
/// gets a different seeded slide.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn control_flow_trials(trials: u32, aslr: bool) -> Result<AslrOutcome, RuntimeError> {
    let world = StudentWorld::plain();
    let assumed = assumed_system_addr(&world);
    let mut outcome = AslrOutcome { trials, ..AslrOutcome::default() };

    for t in 0..trials {
        let mut m = machine_for(&world, aslr.then_some(u64::from(t) + 1));
        m.register_function("system", Privilege::Privileged);
        m.push_frame("main", &[("argbuf", VarDecl::char_buf(256))])?;
        m.push_frame("addStudent", &[("stud", VarDecl::Class(world.student))])?;
        let stud = m.local_addr("stud")?;
        let ret_slot = m.frame()?.ret_slot();
        // The *relative* geometry is layout-knowledge the attacker always
        // has (it comes from the class definitions, not the load address).
        let ret_index = ret_slot.offset_from(stud + 16) / 4;

        let gs = placement_new(&mut m, stud, world.grad)?;
        for i in 0..3u32 {
            if u64::from(i) == ret_index {
                gs.write_elem_i32(&mut m, "ssn", i, assumed as i32)?;
            }
        }
        match m.ret()?.outcome {
            ControlOutcome::Hijacked { name, .. } if name == "system" => outcome.successes += 1,
            ControlOutcome::CanaryDetected { .. } | ControlOutcome::ShadowStackDetected { .. } => {
                outcome.detected += 1;
            }
            ControlOutcome::Return => {}
            _ => outcome.crashes += 1,
        }
    }
    Ok(outcome)
}

/// Runs `trials` data-only attacks (Listing 14: the adjacent counter is
/// overwritten with a *value*, not an address) under the same regimes.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn data_only_trials(trials: u32, aslr: bool) -> Result<AslrOutcome, RuntimeError> {
    let world = StudentWorld::plain();
    let mut outcome = AslrOutcome { trials, ..AslrOutcome::default() };

    for t in 0..trials {
        let mut m = machine_for(&world, aslr.then_some(u64::from(t) + 1));
        let stud1 = m.define_global("stud1", VarDecl::Class(world.student), SegmentKind::Bss)?;
        let count = m.define_global(
            "noOfStudents",
            VarDecl::Ty(pnew_object::CxxType::Int),
            SegmentKind::Bss,
        )?;
        m.space_mut().write_i32(count, 0)?;
        let st = placement_new(&mut m, stud1, world.grad)?;
        st.write_elem_i32(&mut m, "ssn", 0, 50_000)?;
        if m.space().read_i32(count)? == 50_000 {
            outcome.successes += 1;
        } else {
            outcome.crashes += 1;
        }
    }
    Ok(outcome)
}

/// Runs `trials` leak-assisted control-flow attacks under ASLR: the
/// attacker first uses the §4.3 information leak to read a code pointer
/// the victim keeps next to the reused pool, derives `&system` from the
/// *relative* distance between functions (a property of the binary, not
/// of the load address), and only then mounts the Listing 13 overwrite.
/// This is the canonical "info leak defeats ASLR" chain, built entirely
/// from the paper's own primitives.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn leak_assisted_trials(trials: u32) -> Result<AslrOutcome, RuntimeError> {
    let world = StudentWorld::plain();

    // Attacker intelligence that ASLR does NOT hide: the distance between
    // two functions inside the binary (read off any copy of it).
    let delta = {
        let mut reference = machine_for(&world, None);
        let log = reference.register_function("logRequest", Privilege::Normal);
        let system = reference.register_function("system", Privilege::Privileged);
        reference.funcs().def(system).addr().value() as i64
            - reference.funcs().def(log).addr().value() as i64
    };

    let mut outcome = AslrOutcome { trials, ..AslrOutcome::default() };
    for t in 0..trials {
        let mut m = machine_for(&world, Some(u64::from(t) + 1));
        let log = m.register_function("logRequest", Privilege::Normal);
        let log_addr = m.funcs().def(log).addr();
        m.register_function("system", Privilege::Privileged);

        // The victim keeps a dispatch pointer right next to its reusable
        // pool — the §4.3 leak ships both out together.
        let pool =
            m.define_global("mem_pool", VarDecl::Buffer { size: 64, align: 8 }, SegmentKind::Bss)?;
        let handler = m.define_global(
            "log_handler",
            VarDecl::Ty(pnew_object::CxxType::ptr(pnew_object::CxxType::Char)),
            SegmentKind::Bss,
        )?;
        m.space_mut().write_ptr(handler, log_addr)?;

        // Step 1 — the information leak: store(userdata) reads past the
        // short user string and ships the neighbouring pointer bytes.
        let leaked_bytes = m.space().read_vec(pool, 64 + 8)?;
        let off = handler.offset_from(pool) as usize;
        let leaked_handler =
            u32::from_le_bytes(leaked_bytes[off..off + 4].try_into().expect("4 bytes"));

        // Step 2 — derive &system and mount the Listing 13 overwrite.
        let derived_system = (i64::from(leaked_handler) + delta) as u32;
        m.push_frame("main", &[("argbuf", VarDecl::char_buf(256))])?;
        m.push_frame("addStudent", &[("stud", VarDecl::Class(world.student))])?;
        let stud = m.local_addr("stud")?;
        let ret_index = m.frame()?.ret_slot().offset_from(stud + 16) / 4;
        let gs = placement_new(&mut m, stud, world.grad)?;
        gs.write_elem_i32(&mut m, "ssn", ret_index as u32, derived_system as i32)?;

        match m.ret()?.outcome {
            ControlOutcome::Hijacked { name, .. } if name == "system" => outcome.successes += 1,
            ControlOutcome::CanaryDetected { .. } => outcome.detected += 1,
            ControlOutcome::Return => {}
            _ => outcome.crashes += 1,
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRIALS: u32 = 32;

    #[test]
    fn control_flow_attacks_need_the_fixed_layout() {
        let fixed = control_flow_trials(TRIALS, false).unwrap();
        assert_eq!(fixed.successes, TRIALS, "{fixed:?}");
        assert_eq!(fixed.success_rate(), 1.0);

        let randomized = control_flow_trials(TRIALS, true).unwrap();
        assert_eq!(randomized.successes, 0, "{randomized:?}");
        // The wrong absolute address lands nowhere useful: crashes.
        assert_eq!(randomized.crashes, TRIALS);
    }

    #[test]
    fn data_only_attacks_are_aslr_immune() {
        let fixed = data_only_trials(TRIALS, false).unwrap();
        let randomized = data_only_trials(TRIALS, true).unwrap();
        assert_eq!(fixed.successes, TRIALS);
        assert_eq!(randomized.successes, TRIALS, "{randomized:?}");
    }

    #[test]
    fn an_info_leak_defeats_aslr() {
        // The blind attack fails under ASLR; the leak-assisted chain is
        // back to 100%.
        let blind = control_flow_trials(TRIALS, true).unwrap();
        let assisted = leak_assisted_trials(TRIALS).unwrap();
        assert_eq!(blind.successes, 0);
        assert_eq!(assisted.successes, TRIALS, "{assisted:?}");
    }

    #[test]
    fn outcome_rates() {
        let o = AslrOutcome { trials: 4, successes: 1, crashes: 3, detected: 0 };
        assert_eq!(o.success_rate(), 0.25);
        assert_eq!(AslrOutcome::default().success_rate(), 0.0);
    }
}
