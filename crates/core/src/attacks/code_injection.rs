//! E6 — code injection (§3.6.2).
//!
//! "If the size of an instance of GradStudent is large enough to overwrite
//! the return address, and the size of all local variables in
//! `addStudent()` is enough to inject shell code, then the attacker can
//! set the values of `ssn[]` and other variables (e.g., `stud`) so that
//! the function would return to execute the supplied shell code."
//!
//! The attacker writes shellcode bytes into the overflowed object's own
//! field bytes (`stud` *is* attacker-controlled storage) and points the
//! return address at them. Whether the "shellcode" runs is decided by the
//! stack's execute permission: on the NX stack of the paper's platform the
//! return faults; with an executable stack
//! ([`AttackConfig::executable_stack`]) the injected code executes.

use pnew_runtime::{ControlOutcome, FaultReason, RuntimeError, VarDecl};

use crate::attacks::{note_ret, place_object_site, ssn_input_loop};
use crate::protect::Arena;
use crate::report::{AttackConfig, AttackKind, AttackReport};
use crate::student::StudentWorld;

/// A recognizable stand-in for shellcode (x86 `nop` sled + `int 0x80`
/// flavoured bytes); the simulator never decodes it, only the execute
/// permission matters.
pub const SHELLCODE: [u8; 16] = [
    0x90, 0x90, 0x90, 0x90, 0x31, 0xc0, 0x50, 0x68, 0x2f, 0x2f, 0x73, 0x68, 0xcd, 0x80, 0x90, 0x90,
];

/// Runs the code-injection attack.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::CodeInjection);
    let world = StudentWorld::plain();
    let mut m = world.machine(config);

    m.push_frame("main", &[("argbuf", VarDecl::char_buf(256))])?;
    m.push_frame("addStudent", &[("stud", VarDecl::Class(world.student))])?;
    let stud = m.local_addr("stud")?;
    let ret_slot = m.frame()?.ret_slot();
    let ssn_base = stud + m.size_of(world.student)?;
    let ret_index = ret_slot.offset_from(ssn_base) as u32 / 4;

    let arena = Arena::new(stud, m.size_of(world.student)?);
    let gs = place_object_site(&mut m, config, arena, world.grad, &mut report)?;

    // Inject the shellcode through the object's own fields: the attacker
    // controls gpa/year/semester, whose bytes are the first 16 of stud.
    let payload_target = gs.addr();
    m.space_mut().write_bytes(payload_target, &SHELLCODE)?;
    report.note(format!("16 shellcode bytes staged at {payload_target} (inside stud)"));

    // Selective overwrite pointing the return address at the shellcode.
    let script: Vec<i64> = (0..3)
        .map(|i| if i == ret_index { i64::from(payload_target.value()) } else { 0 })
        .collect();
    m.input_mut().extend(script);
    ssn_input_loop(&mut m, &gs)?;

    let event = m.ret()?;
    note_ret(&mut report, &event.outcome);
    report.succeeded = matches!(event.outcome, ControlOutcome::ShellCode { .. });
    report.measure(
        "nx_fault",
        f64::from(u8::from(matches!(
            event.outcome,
            ControlOutcome::Fault { reason: FaultReason::NxViolation, .. }
        ))),
    );
    report.measure("stack_executable", f64::from(u8::from(config.executable_stack)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Defense;

    #[test]
    fn nx_stack_faults_the_injected_code() {
        let r = run(&AttackConfig::paper()).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.measurement("nx_fault"), Some(1.0));
    }

    #[test]
    fn executable_stack_runs_the_injected_code() {
        let mut cfg = AttackConfig::paper();
        cfg.executable_stack = true;
        let r = run(&cfg).unwrap();
        assert!(r.succeeded, "{}", r.verdict());
        assert!(r.evidence.iter().any(|e| e.contains("injected code executed")));
    }

    #[test]
    fn shadow_stack_stops_it_even_on_executable_stacks() {
        let mut cfg = AttackConfig::paper();
        cfg.executable_stack = true;
        cfg.shadow_stack = true;
        let r = run(&cfg).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.detected_by.as_deref(), Some("shadow stack"));
    }

    #[test]
    fn checked_placement_blocks_it() {
        let mut cfg = AttackConfig::with_defense(Defense::correct_coding());
        cfg.executable_stack = true;
        let r = run(&cfg).unwrap();
        assert!(!r.succeeded);
        assert!(r.blocked_by.is_some());
    }
}
