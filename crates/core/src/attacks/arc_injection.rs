//! E5 — arc injection / return-to-libc (§3.6.2).
//!
//! "The attacker can carry out an arc injection attack (same as
//! return-to-libc attacks) by specifying the address of another method in
//! the same code. For example, the address of a method that makes a system
//! call in a privileged mode can be used."
//!
//! The scenario registers a privileged `system`-style entry plus benign
//! application functions, mounts the Listing 13 selective overwrite with
//! the privileged entry's address, and asserts that control reaches it
//! with the canary intact. The attacker's "argument" (`/bin/sh`) is staged
//! in the overflowed object's own bytes, as §3.6.2 describes for locals.

use pnew_runtime::{ControlOutcome, FuncEffect, Privilege, RuntimeError, VarDecl};

use crate::attacks::{note_ret, place_object_site, ssn_input_loop};
use crate::protect::Arena;
use crate::report::{AttackConfig, AttackKind, AttackReport};
use crate::student::StudentWorld;

/// Runs the arc-injection attack.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::ArcInjection);
    let world = StudentWorld::plain();
    let mut m = world.machine(config);

    // The victim binary's own code: benign entries plus the juicy target.
    m.register_function("validateStudent", Privilege::Normal);
    m.register_function("logRequest", Privilege::Normal);
    let system = m.register_function("system", Privilege::Privileged);
    let system_addr = m.funcs().def(system).addr();

    m.push_frame("main", &[("argbuf", VarDecl::char_buf(256))])?;
    m.push_frame("addStudent", &[("stud", VarDecl::Class(world.student))])?;
    let stud = m.local_addr("stud")?;
    let ret_slot = m.frame()?.ret_slot();
    let ssn_base = stud + m.size_of(world.student)?;
    let ret_index = ret_slot.offset_from(ssn_base) as u32 / 4;

    let arena = Arena::new(stud, m.size_of(world.student)?);
    let gs = place_object_site(&mut m, config, arena, world.grad, &mut report)?;

    // Stage the attacker "argument" inside the object's own bytes (the
    // gpa/year fields the attacker also controls), then the selective
    // return-address overwrite. `system` reads its argument from exactly
    // those bytes when it runs.
    gs.write_f64(&mut m, "gpa", f64::from_bits(u64::from_le_bytes(*b"/bin/sh\0")))?;
    m.set_function_effects(system, vec![FuncEffect::SpawnShell { arg: gs.addr() }]);
    report.note("staged \"/bin/sh\" in the object's gpa field bytes");
    let script: Vec<i64> =
        (0..3).map(|i| if i == ret_index { i64::from(system_addr.value()) } else { 0 }).collect();
    m.input_mut().extend(script);
    ssn_input_loop(&mut m, &gs)?;

    let event = m.ret()?;
    note_ret(&mut report, &event.outcome);
    let privileged_reached = matches!(
        &event.outcome,
        ControlOutcome::Hijacked { privileged: true, name, .. } if name == "system"
    );
    report.succeeded = privileged_reached;
    if privileged_reached {
        // Control reached system(): run its effect and observe the impact.
        m.invoke(system)?;
        report.note(format!("shell ledger: {:?}", m.shells_spawned()));
        report.measure("shells_spawned", m.shells_spawned().len() as f64);
    }
    report.measure("privileged_reached", f64::from(u8::from(privileged_reached)));
    let _ = stud;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Defense;
    use pnew_runtime::StackProtection;

    #[test]
    fn reaches_system_under_stackguard_via_selective_overwrite() {
        let r = run(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded, "{}", r.verdict());
        assert_eq!(r.measurement("privileged_reached"), Some(1.0));
        assert!(r.evidence.iter().any(|e| e.contains("/bin/sh")));
    }

    #[test]
    fn reaches_system_without_protection() {
        let r = run(&AttackConfig::with_protection(StackProtection::None)).unwrap();
        assert!(r.succeeded);
    }

    #[test]
    fn shadow_stack_stops_it() {
        let mut cfg = AttackConfig::paper();
        cfg.shadow_stack = true;
        let r = run(&cfg).unwrap();
        assert!(!r.succeeded);
        assert_eq!(r.detected_by.as_deref(), Some("shadow stack"));
    }

    #[test]
    fn checked_placement_blocks_it() {
        let r = run(&AttackConfig::with_defense(Defense::correct_coding())).unwrap();
        assert!(!r.succeeded);
        assert!(r.blocked_by.is_some());
    }
}
