//! E13 — variable pointer subterfuge (§3.10, Listing 18).
//!
//! ```c++
//! Student stud; char *name;
//! int main() {
//!   GradStudent *st; name = new char[16];
//!   st = new (&stud) GradStudent();
//!   cin >> st->ssn[0]; // overwrites ptr name
//!   cin >> st->ssn[1]; cin >> st->ssn[2];
//! }
//! ```
//!
//! The globals `stud` and `name` are adjacent, so `ssn[0]` rewrites the
//! pointer itself. "The pointer subterfuge makes the variable point to an
//! arbitrary location, and causes the program to crash or use an
//! attacker specified value at another location." The scenario redirects
//! `name` at a security-relevant global (`is_admin`) and lets the
//! program's next innocent write through `name` flip it.

use pnew_memory::SegmentKind;
use pnew_object::CxxType;
use pnew_runtime::{RuntimeError, VarDecl};

use crate::attacks::{place_object_site, ssn_input_loop};
use crate::placement::heap_new_array;
use crate::protect::Arena;
use crate::report::{AttackConfig, AttackKind, AttackReport};
use crate::student::StudentWorld;

/// Runs Listing 18.
///
/// # Errors
///
/// Fails only on scenario wiring problems.
pub fn run(config: &AttackConfig) -> Result<AttackReport, RuntimeError> {
    let mut report = AttackReport::new(AttackKind::VarPtrSubterfuge);
    let world = StudentWorld::plain();
    let mut m = world.machine(config);

    // Student stud; char *name;  (bss, adjacent)
    let stud = m.define_global("stud", VarDecl::Class(world.student), SegmentKind::Bss)?;
    let name_ptr =
        m.define_global("name", VarDecl::Ty(CxxType::ptr(CxxType::Char)), SegmentKind::Bss)?;
    // A victim the attacker wants written: an authorization flag elsewhere
    // in the data segment.
    let is_admin = m.define_global("is_admin", VarDecl::Ty(CxxType::Int), SegmentKind::Data)?;
    m.space_mut().write_i32(is_admin, 0)?;

    // name = new char[16];
    let buf = heap_new_array(&mut m, CxxType::Char, 16)?;
    m.space_mut().write_ptr(name_ptr, buf.addr())?;
    report.note(format!(
        "stud at {stud}, name pointer at {name_ptr} (= stud + {}), heap buffer at {}",
        name_ptr.offset_from(stud),
        buf.addr()
    ));

    // st = new (&stud) GradStudent();
    let arena = Arena::new(stud, m.size_of(world.student)?);
    let st = place_object_site(&mut m, config, arena, world.grad, &mut report)?;

    // ssn[0] overwrites the pointer: point it at is_admin.
    m.input_mut().extend([i64::from(is_admin.value()), 0i64, 0i64]);
    ssn_input_loop(&mut m, &st)?;

    // The program later writes user data "into name" — an innocent write
    // that now lands wherever the attacker aimed.
    let name_now = m.space().read_ptr(name_ptr)?;
    report.note(format!("name now points at {name_now}"));
    m.strncpy(name_now, &1i32.to_le_bytes(), 4)?;

    let admin_after = m.space().read_i32(is_admin)?;
    report.note(format!("is_admin before: 0, after: {admin_after}"));
    report.measure("is_admin_after", f64::from(admin_after));
    report.succeeded = admin_after != 0;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Defense;

    #[test]
    fn redirected_pointer_flips_the_admin_flag() {
        let r = run(&AttackConfig::paper()).unwrap();
        assert!(r.succeeded, "{}", r.verdict());
        assert_eq!(r.measurement("is_admin_after"), Some(1.0));
    }

    #[test]
    fn blocked_by_checked_placement_and_interceptor() {
        for d in [Defense::correct_coding(), Defense::intercept()] {
            let r = run(&AttackConfig::with_defense(d)).unwrap();
            assert!(!r.succeeded, "defense {} should block", d.label());
            assert_eq!(r.measurement("is_admin_after"), Some(0.0));
        }
    }
}
