//! Attack configuration and reporting.
//!
//! Every scenario in [`crate::attacks`] runs under an [`AttackConfig`]
//! (platform knobs + active defenses) and produces an [`AttackReport`]
//! recording the paper's own success predicate for that attack, the
//! evidence, and any numbers the experiment tables need.

use std::fmt;

use pnew_object::LayoutPolicy;
use pnew_runtime::StackProtection;

use crate::protect::PlacementMode;

/// The attack classes of the paper, one per experiment family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// E1 — §3.5 Listing 11: bss object overflow.
    BssOverflow,
    /// E1b — §3.4 Listing 10: internal overflow inside `MobilePlayer`.
    InternalOverflow,
    /// E2 — §3.5.1 Listing 12: heap overflow into a neighbouring block.
    HeapOverflow,
    /// E3 — §3.6.1 Listing 13: return-address overwrite (naive).
    StackSmash,
    /// E4 — §3.6.1/§5.2: selective overwrite that skips the canary.
    CanaryBypass,
    /// E5 — §3.6.2: arc injection / return-to-libc.
    ArcInjection,
    /// E6 — §3.6.2: code injection into stack locals.
    CodeInjection,
    /// E7 — §3.7.1 Listing 14: global variable modification.
    GlobalVarMod,
    /// E8 — §3.7.2 Listing 15: stack local modification (with padding).
    StackLocalMod,
    /// E9 — §3.8.1 Listing 16: member-variable modification.
    MemberVarMod,
    /// E10/E11 — §3.8.2: vtable-pointer subterfuge.
    VptrSubterfuge,
    /// E12 — §3.9 Listing 17: function-pointer subterfuge.
    FnPtrSubterfuge,
    /// E13 — §3.10 Listing 18: variable-pointer subterfuge.
    VarPtrSubterfuge,
    /// E14 — §4.1 Listing 19: two-step array overflow on the stack.
    ArrayTwoStepStack,
    /// E15 — §4.2 Listing 20: two-step array overflow in bss.
    ArrayTwoStepBss,
    /// E16 — §4.3 Listing 21: information leak through array reuse.
    InfoLeakArray,
    /// E17 — §4.3 Listing 22: information leak through object reuse.
    InfoLeakObject,
    /// E18 — §4.4: denial of service via loop-bound corruption.
    DosLoop,
    /// E19 — §4.5 Listing 23: memory leak via size-mismatched release.
    MemoryLeak,
}

impl AttackKind {
    /// All kinds, in experiment order.
    pub const ALL: [AttackKind; 19] = [
        AttackKind::BssOverflow,
        AttackKind::InternalOverflow,
        AttackKind::HeapOverflow,
        AttackKind::StackSmash,
        AttackKind::CanaryBypass,
        AttackKind::ArcInjection,
        AttackKind::CodeInjection,
        AttackKind::GlobalVarMod,
        AttackKind::StackLocalMod,
        AttackKind::MemberVarMod,
        AttackKind::VptrSubterfuge,
        AttackKind::FnPtrSubterfuge,
        AttackKind::VarPtrSubterfuge,
        AttackKind::ArrayTwoStepStack,
        AttackKind::ArrayTwoStepBss,
        AttackKind::InfoLeakArray,
        AttackKind::InfoLeakObject,
        AttackKind::DosLoop,
        AttackKind::MemoryLeak,
    ];

    /// Stable short name (used in tables and bench ids).
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::BssOverflow => "bss-overflow",
            AttackKind::InternalOverflow => "internal-overflow",
            AttackKind::HeapOverflow => "heap-overflow",
            AttackKind::StackSmash => "stack-smash",
            AttackKind::CanaryBypass => "canary-bypass",
            AttackKind::ArcInjection => "arc-injection",
            AttackKind::CodeInjection => "code-injection",
            AttackKind::GlobalVarMod => "global-var-mod",
            AttackKind::StackLocalMod => "stack-local-mod",
            AttackKind::MemberVarMod => "member-var-mod",
            AttackKind::VptrSubterfuge => "vptr-subterfuge",
            AttackKind::FnPtrSubterfuge => "fnptr-subterfuge",
            AttackKind::VarPtrSubterfuge => "varptr-subterfuge",
            AttackKind::ArrayTwoStepStack => "array-two-step-stack",
            AttackKind::ArrayTwoStepBss => "array-two-step-bss",
            AttackKind::InfoLeakArray => "info-leak-array",
            AttackKind::InfoLeakObject => "info-leak-object",
            AttackKind::DosLoop => "dos-loop",
            AttackKind::MemoryLeak => "memory-leak",
        }
    }

    /// The paper section/listing the attack reproduces.
    pub fn paper_ref(self) -> &'static str {
        match self {
            AttackKind::BssOverflow => "§3.5, Listing 11",
            AttackKind::InternalOverflow => "§3.4, Listing 10",
            AttackKind::HeapOverflow => "§3.5.1, Listing 12",
            AttackKind::StackSmash => "§3.6.1, Listing 13",
            AttackKind::CanaryBypass => "§3.6.1/§5.2, Listing 13",
            AttackKind::ArcInjection => "§3.6.2",
            AttackKind::CodeInjection => "§3.6.2",
            AttackKind::GlobalVarMod => "§3.7.1, Listing 14",
            AttackKind::StackLocalMod => "§3.7.2, Listing 15",
            AttackKind::MemberVarMod => "§3.8.1, Listing 16",
            AttackKind::VptrSubterfuge => "§3.8.2",
            AttackKind::FnPtrSubterfuge => "§3.9, Listing 17",
            AttackKind::VarPtrSubterfuge => "§3.10, Listing 18",
            AttackKind::ArrayTwoStepStack => "§4.1, Listing 19",
            AttackKind::ArrayTwoStepBss => "§4.2, Listing 20",
            AttackKind::InfoLeakArray => "§4.3, Listing 21",
            AttackKind::InfoLeakObject => "§4.3, Listing 22",
            AttackKind::DosLoop => "§4.4",
            AttackKind::MemoryLeak => "§4.5, Listing 23",
        }
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which §5 defenses are active in the victim program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Defense {
    /// How placement-new call sites behave.
    pub placement: PlacementMode,
    /// Sanitize arenas (memset 0) before reuse (§5.1 information-leak
    /// defense).
    pub sanitize_reuse: bool,
    /// Release placement-allocated pool blocks with a proper placement
    /// delete (§5.1 memory-leak defense).
    pub placement_delete: bool,
}

impl Defense {
    /// No defenses: the vulnerable programs exactly as listed in the paper.
    pub fn none() -> Self {
        Defense {
            placement: PlacementMode::Unchecked,
            sanitize_reuse: false,
            placement_delete: false,
        }
    }

    /// §5.1 "correct coding": checked placement, sanitized reuse, placement
    /// delete.
    pub fn correct_coding() -> Self {
        Defense { placement: PlacementMode::Checked, sanitize_reuse: true, placement_delete: true }
    }

    /// §5.2 legacy-software route: a libsafe-style library interceptor
    /// (sees heap blocks and globals, blind to stack locals), no source
    /// changes.
    pub fn intercept() -> Self {
        Defense {
            placement: PlacementMode::Intercepted,
            sanitize_reuse: false,
            placement_delete: false,
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        if *self == Defense::none() {
            "none".to_owned()
        } else if *self == Defense::correct_coding() {
            "correct-coding".to_owned()
        } else if *self == Defense::intercept() {
            "intercept".to_owned()
        } else {
            format!(
                "{}{}{}",
                self.placement,
                if self.sanitize_reuse { "+sanitize" } else { "" },
                if self.placement_delete { "+pdelete" } else { "" }
            )
        }
    }
}

impl Default for Defense {
    fn default() -> Self {
        Self::none()
    }
}

/// Platform and defense configuration for one scenario run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackConfig {
    /// Compiler stack protection (canary / frame pointer).
    pub protection: StackProtection,
    /// §5.2 return-address stack.
    pub shadow_stack: bool,
    /// Pre-NX executable stack (needed for code injection to *run*).
    pub executable_stack: bool,
    /// Layout policy (data model, double alignment).
    pub policy: LayoutPolicy,
    /// RNG seed (canary value, workloads).
    pub seed: u64,
    /// Active defenses in the victim program.
    pub defense: Defense,
}

impl AttackConfig {
    /// The paper's platform with the vulnerable (undefended) programs.
    pub fn paper() -> Self {
        AttackConfig {
            protection: StackProtection::StackGuard,
            shadow_stack: false,
            executable_stack: false,
            policy: LayoutPolicy::paper(),
            seed: 0x1cdc_2011,
            defense: Defense::none(),
        }
    }

    /// Same platform with a different defense.
    pub fn with_defense(defense: Defense) -> Self {
        AttackConfig { defense, ..Self::paper() }
    }

    /// Same platform with a different stack protection.
    pub fn with_protection(protection: StackProtection) -> Self {
        AttackConfig { protection, ..Self::paper() }
    }
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The result of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackReport {
    /// Which attack ran.
    pub kind: AttackKind,
    /// Whether the attack achieved its paper-defined predicate.
    pub succeeded: bool,
    /// Defense that refused the vulnerable operation, if any
    /// (e.g. `"checked placement"`).
    pub blocked_by: Option<String>,
    /// Runtime mechanism that detected the attack after the fact, if any
    /// (e.g. `"stackguard"`).
    pub detected_by: Option<String>,
    /// Human-readable evidence lines (before/after values, addresses).
    pub evidence: Vec<String>,
    /// Named measurements for the experiment tables.
    pub measurements: Vec<(String, f64)>,
}

impl AttackReport {
    /// Starts an unsuccessful, evidence-free report for `kind`.
    pub fn new(kind: AttackKind) -> Self {
        AttackReport {
            kind,
            succeeded: false,
            blocked_by: None,
            detected_by: None,
            evidence: Vec::new(),
            measurements: Vec::new(),
        }
    }

    /// Records an evidence line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.evidence.push(line.into());
    }

    /// Records a named measurement.
    pub fn measure(&mut self, name: impl Into<String>, value: f64) {
        self.measurements.push((name.into(), value));
    }

    /// Looks a measurement up by name.
    pub fn measurement(&self, name: &str) -> Option<f64> {
        self.measurements.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// One-line verdict for tables.
    pub fn verdict(&self) -> String {
        if self.succeeded {
            "SUCCEEDS".to_owned()
        } else if let Some(d) = &self.detected_by {
            format!("DETECTED by {d}")
        } else if let Some(b) = &self.blocked_by {
            format!("BLOCKED by {b}")
        } else {
            "FAILS".to_owned()
        }
    }
}

impl fmt::Display for AttackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] {} — {}", self.kind, self.kind.paper_ref(), self.verdict())?;
        for e in &self.evidence {
            writeln!(f, "  {e}")?;
        }
        for (name, value) in &self.measurements {
            writeln!(f, "  {name} = {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_complete_and_named() {
        assert_eq!(AttackKind::ALL.len(), 19);
        for k in AttackKind::ALL {
            assert!(!k.name().is_empty());
            assert!(k.paper_ref().contains('§'));
        }
        assert_eq!(AttackKind::StackSmash.to_string(), "stack-smash");
    }

    #[test]
    fn defense_labels() {
        assert_eq!(Defense::none().label(), "none");
        assert_eq!(Defense::correct_coding().label(), "correct-coding");
        assert_eq!(Defense::intercept().label(), "intercept");
        let mixed = Defense { sanitize_reuse: true, ..Defense::none() };
        assert!(mixed.label().contains("sanitize"));
        assert_eq!(Defense::default(), Defense::none());
    }

    #[test]
    fn config_constructors() {
        let c = AttackConfig::paper();
        assert_eq!(c.protection, StackProtection::StackGuard);
        assert!(!c.shadow_stack);
        let c = AttackConfig::with_protection(StackProtection::None);
        assert_eq!(c.protection, StackProtection::None);
        let c = AttackConfig::with_defense(Defense::correct_coding());
        assert_eq!(c.defense, Defense::correct_coding());
        assert_eq!(AttackConfig::default(), AttackConfig::paper());
    }

    #[test]
    fn report_accumulates() {
        let mut r = AttackReport::new(AttackKind::BssOverflow);
        assert_eq!(r.verdict(), "FAILS");
        r.note("gpa before: 4.0");
        r.measure("victim_delta", 1.0);
        r.succeeded = true;
        assert_eq!(r.verdict(), "SUCCEEDS");
        assert_eq!(r.measurement("victim_delta"), Some(1.0));
        assert_eq!(r.measurement("nope"), None);
        let text = r.to_string();
        assert!(text.contains("bss-overflow"));
        assert!(text.contains("gpa before"));
    }

    #[test]
    fn verdict_priorities() {
        let mut r = AttackReport::new(AttackKind::StackSmash);
        r.detected_by = Some("stackguard".into());
        assert!(r.verdict().contains("DETECTED"));
        let mut r = AttackReport::new(AttackKind::StackSmash);
        r.blocked_by = Some("checked placement".into());
        assert!(r.verdict().contains("BLOCKED"));
    }
}
