//! Placement-new buffer-overflow attacks and protections — the primary
//! contribution of *"A New Class of Buffer Overflow Attacks"* (Kundu &
//! Bertino, ICDCS 2011), reproduced on a simulated C++ runtime.
//!
//! The crate has four layers:
//!
//! * [`placement`](crate::placement_new) — the §2 primitive, faithful to
//!   its lack of bounds/type/alignment checking, plus the serialized-object
//!   copy construction of §3.2;
//! * [`student`] — the `Student`/`GradStudent`/`MobilePlayer` class family
//!   every listing uses;
//! * [`attacks`] — one runnable scenario per attack in the paper
//!   (Listings 11–23 and the §3.6/§3.8/§4.4 variants), each producing an
//!   [`AttackReport`] with the paper's own success predicate;
//! * [`protect`] — the §5 defenses: checked placement with heap fallback,
//!   arena sanitization, placement delete, and libsafe-style interception
//!   (StackGuard and the shadow stack are machine-level switches in
//!   [`pnew_runtime`]).
//!
//! # Examples
//!
//! Run the paper's flagship demonstration — Listing 11's bss object
//! overflow — and watch `stud2.gpa` change without `stud2` ever being
//! written through its own name:
//!
//! ```
//! use pnew_core::attacks::bss_overflow;
//! use pnew_core::report::AttackConfig;
//!
//! # fn main() -> Result<(), pnew_runtime::RuntimeError> {
//! let report = bss_overflow::run(&AttackConfig::paper())?;
//! assert!(report.succeeded);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
mod placement;
pub mod protect;
pub mod report;
pub mod student;
pub mod taxonomy;

pub use placement::{
    heap_new, heap_new_array, placement_new, placement_new_array, placement_new_copy, ArrayRef,
    ObjRef,
};
pub use protect::{Arena, PlacementError, PlacementMode};
pub use report::{AttackConfig, AttackKind, AttackReport, Defense};

/// Crate-wide result alias (runtime errors dominate scenario code).
pub type Result<T, E = pnew_runtime::RuntimeError> = std::result::Result<T, E>;
