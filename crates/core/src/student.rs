//! The paper's running example: `Student`, `GradStudent`, `MobilePlayer`.
//!
//! Listing 1 defines the class pair every attack reuses:
//!
//! ```c++
//! class Student {
//!   public: Student(): gpa(0.0), year(0), semester(0) { }
//!   private: double gpa; int year, semester;
//! };
//! class GradStudent : public Student {
//!   public: GradStudent(double sgpa, int yr, int sem) {...}
//!   private: int ssn[3];
//! };
//! ```
//!
//! Under the paper's platform `sizeof(Student) == 16` and
//! `sizeof(GradStudent) == 32` (28 rounded to alignment), with `ssn[]`
//! starting exactly at offset 16 — so placing a `GradStudent` at a
//! `Student` arena makes `ssn[0..3]` alias whatever lives in the 16 bytes
//! past the arena. §3.8.2 adds `virtual char* getInfo()` to both classes,
//! which prepends a vtable pointer. Listing 10 defines `MobilePlayer` with
//! two embedded `Student`s for the internal-overflow case.

use pnew_object::{ClassId, ClassRegistry, CxxType};
use pnew_runtime::{Machine, MachineBuilder};

use crate::report::AttackConfig;

/// The registered class family of the running example.
#[derive(Debug, Clone)]
pub struct StudentWorld {
    /// The registry holding the classes (pass to [`MachineBuilder::build`]).
    pub registry: ClassRegistry,
    /// `Student` (the smaller superclass).
    pub student: ClassId,
    /// `GradStudent` (the larger subclass with `ssn[3]`).
    pub grad: ClassId,
    /// `MobilePlayer` (Listing 10: two embedded `Student`s and a count).
    pub mobile_player: ClassId,
    /// Whether the classes carry `virtual char* getInfo()`.
    pub virtuals: bool,
}

impl StudentWorld {
    /// Builds the non-virtual variant (Listing 1).
    pub fn plain() -> Self {
        Self::build(false)
    }

    /// Builds the §3.8.2 variant with `virtual char* getInfo()` on both
    /// classes.
    pub fn with_virtuals() -> Self {
        Self::build(true)
    }

    fn build(virtuals: bool) -> Self {
        let mut registry = ClassRegistry::new();
        let mut student = registry
            .class("Student")
            .field("gpa", CxxType::Double)
            .field("year", CxxType::Int)
            .field("semester", CxxType::Int);
        if virtuals {
            student = student.virtual_method("getInfo");
        }
        let student = student.register();

        let mut grad = registry
            .class("GradStudent")
            .base(student)
            .field("ssn", CxxType::array(CxxType::Int, 3));
        if virtuals {
            grad = grad.virtual_method("getInfo");
        }
        let grad = grad.register();

        let mobile_player = registry
            .class("MobilePlayer")
            .field("stud1", CxxType::Class(student))
            .field("stud2", CxxType::Class(student))
            .field("n", CxxType::Int)
            .register();

        StudentWorld { registry, student, grad, mobile_player, virtuals }
    }

    /// Builds a machine for this world from an attack configuration.
    pub fn machine(&self, config: &AttackConfig) -> Machine {
        MachineBuilder::new()
            .policy(config.policy)
            .protection(config.protection)
            .shadow_stack(config.shadow_stack)
            .executable_stack(config.executable_stack)
            .seed(config.seed)
            .build(self.registry.clone())
    }

    /// Builds a machine with all-default (paper platform) settings.
    pub fn machine_default(&self) -> Machine {
        self.machine(&AttackConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnew_object::LayoutPolicy;

    #[test]
    fn plain_sizes_match_the_paper() {
        let w = StudentWorld::plain();
        let p = LayoutPolicy::paper();
        assert_eq!(w.registry.size_of(w.student, &p).unwrap(), 16);
        assert_eq!(w.registry.size_of(w.grad, &p).unwrap(), 32);
        assert_eq!(w.registry.size_of(w.mobile_player, &p).unwrap(), 40);
        assert!(!w.virtuals);
        assert!(!w.registry.is_polymorphic(w.student));
    }

    #[test]
    fn virtual_sizes_grow_by_the_vptr() {
        let w = StudentWorld::with_virtuals();
        let p = LayoutPolicy::paper();
        assert_eq!(w.registry.size_of(w.student, &p).unwrap(), 24);
        assert_eq!(w.registry.size_of(w.grad, &p).unwrap(), 40);
        assert!(w.virtuals);
        assert!(w.registry.is_polymorphic(w.grad));
        // ssn still starts exactly at sizeof(Student).
        let gl = w.registry.layout(w.grad, &p).unwrap();
        assert_eq!(gl.offset_of("ssn").unwrap(), 24);
    }

    #[test]
    fn machines_honour_the_config() {
        let w = StudentWorld::plain();
        let cfg = AttackConfig {
            protection: pnew_runtime::StackProtection::None,
            shadow_stack: true,
            ..AttackConfig::default()
        };
        let m = w.machine(&cfg);
        assert_eq!(m.protection(), pnew_runtime::StackProtection::None);
    }

    #[test]
    fn getinfo_vtables_materialized() {
        let w = StudentWorld::with_virtuals();
        let m = w.machine_default();
        assert!(m.vtable_addr(w.student).is_some());
        assert!(m.vtable_addr(w.grad).is_some());
        assert!(m.funcs().by_name("Student::getInfo").is_some());
        assert!(m.funcs().by_name("GradStudent::getInfo").is_some());
    }
}
