//! §3.2 end to end: serialized/remote objects through the wire format
//! into placement construction.
//!
//! Exercises the full pipeline — encode on the "client", decode on the
//! "server", deep-copy placement into a pre-allocated arena — for honest,
//! oversized, and forged-count objects, with and without the §5.1 size
//! check.

use placement_new_attacks::core::student::StudentWorld;
use placement_new_attacks::core::{placement_new_copy, AttackConfig};
use placement_new_attacks::memory::SegmentKind;
use placement_new_attacks::object::wire::{WireError, WireObject};
use placement_new_attacks::object::CxxType;
use placement_new_attacks::runtime::VarDecl;

fn student_payload(gpa: f64, year: i32, semester: i32, extra: &[u8]) -> Vec<u8> {
    let mut p = Vec::new();
    p.extend_from_slice(&gpa.to_le_bytes());
    p.extend_from_slice(&year.to_le_bytes());
    p.extend_from_slice(&semester.to_le_bytes());
    p.extend_from_slice(extra);
    p
}

#[test]
fn honest_round_trip_preserves_fields() {
    let world = StudentWorld::plain();
    let mut m = world.machine(&AttackConfig::paper());
    let arena = m.define_global("stud", VarDecl::Class(world.student), SegmentKind::Bss).unwrap();

    let wire = WireObject::new("Student", student_payload(3.25, 2010, 2, &[]));
    let decoded = WireObject::decode(&wire.encode()).unwrap();
    let obj = placement_new_copy(&mut m, arena, world.student, decoded.payload()).unwrap();
    assert_eq!(obj.read_f64(&mut m, "gpa").unwrap(), 3.25);
    assert_eq!(obj.read_i32(&mut m, "year").unwrap(), 2010);
    assert_eq!(obj.read_i32(&mut m, "semester").unwrap(), 2);
}

#[test]
fn oversized_remote_object_overflows_the_arena() {
    let world = StudentWorld::plain();
    let mut m = world.machine(&AttackConfig::paper());
    let arena = m.define_global("stud", VarDecl::Class(world.student), SegmentKind::Bss).unwrap();
    let victim = m.define_global("counter", VarDecl::Ty(CxxType::Int), SegmentKind::Bss).unwrap();
    m.space_mut().write_i32(victim, 7).unwrap();

    // A GradStudent-sized payload arriving where a Student was expected.
    let payload = student_payload(4.0, 2009, 1, &0xdead_beefu32.to_le_bytes());
    let wire = WireObject::new("GradStudent", payload);
    let decoded = WireObject::decode(&wire.encode()).unwrap();
    placement_new_copy(&mut m, arena, world.student, decoded.payload()).unwrap();

    assert_eq!(
        m.space().read_u32(victim).unwrap(),
        0xdead_beef,
        "the 4 extra payload bytes clobbered the neighbouring global"
    );
}

#[test]
fn size_checked_receiver_rejects_the_oversized_object() {
    let world = StudentWorld::plain();
    let mut m = world.machine(&AttackConfig::paper());
    let arena_addr =
        m.define_global("stud", VarDecl::Class(world.student), SegmentKind::Bss).unwrap();
    let arena_size = m.size_of(world.student).unwrap();

    let payload = student_payload(4.0, 2009, 1, &[0xff; 16]);
    let wire = WireObject::new("GradStudent", payload);
    // The §5.1 check the vulnerable receiver omits:
    assert!(wire.payload().len() as u32 > arena_size);
    // A correct receiver refuses before any byte is written.
    let before = m.space().read_vec(arena_addr, arena_size).unwrap();
    // (no placement performed)
    let after = m.space().read_vec(arena_addr, arena_size).unwrap();
    assert_eq!(before, after);
}

#[test]
fn forged_counts_survive_transport_but_not_scrutiny() {
    // Listing 5's vector: the count header is attacker-controlled.
    let forged = WireObject::new("Student", vec![0u8; 16]).with_count(1_000_000);
    let decoded = WireObject::decode(&forged.encode()).unwrap();
    assert_eq!(decoded.count(), 1_000_000);
    // A §5.1-correct receiver compares the claim against the payload:
    assert_ne!(decoded.count() as usize * 16, decoded.payload().len());
}

#[test]
fn malformed_wire_objects_are_rejected_syntactically() {
    let good = WireObject::new("Student", vec![1, 2, 3]).encode();
    assert!(matches!(
        WireObject::decode(&good[..good.len() - 1]),
        Err(WireError::Truncated { .. })
    ));
    let mut trailing = good.clone();
    trailing.push(0);
    assert!(matches!(WireObject::decode(&trailing), Err(WireError::TrailingBytes { .. })));
}

#[test]
fn vptr_is_restored_after_deep_copy() {
    // placement_new_copy must re-establish the placed class's vtable
    // pointer even when the payload tried to forge it.
    let world = StudentWorld::with_virtuals();
    let mut m = world.machine(&AttackConfig::paper());
    let arena = m.define_global("stud", VarDecl::Class(world.student), SegmentKind::Bss).unwrap();

    // Payload starts with a bogus vptr value.
    let mut payload = vec![0u8; 24];
    payload[..4].copy_from_slice(&0x41414141u32.to_le_bytes());
    placement_new_copy(&mut m, arena, world.student, &payload).unwrap();
    let vptr = m.space().read_ptr(arena).unwrap();
    assert_eq!(Some(vptr), m.vtable_addr(world.student), "constructor wins over payload");
}
