//! Property-based tests for the dependency-aware incremental rescan.
//!
//! Random edit sequences run over a generated on-disk corpus, and after
//! every edit the incremental path must be indistinguishable from a
//! from-scratch scan:
//!
//! * **envelope identity** — the `pncheck-report/1` JSON and the SARIF
//!   rendered from `rescan_delta` outcomes are byte-identical to the
//!   ones a fresh engine produces for the same tree, whether the rescan
//!   found the edits by stat drift (no hint) or was told about them
//!   (accurate hint);
//! * **cone soundness** — every function whose summary record changed
//!   across an edit, and every transitive caller of one, lands inside
//!   the invalidation cone reported by `invalidation_cone`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use placement_new_attacks::corpus::workload;
use placement_new_attacks::detector::emit::{render_json, render_sarif, FileRecord};
use placement_new_attacks::detector::{
    invalidation_cone, pretty_program, Analyzer, BatchEngine, FunctionSummaryRecord, TrackedOutcome,
};

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch directory per proptest case.
fn case_dir() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("pnx-delta-prop-{}-{n}", std::process::id()))
}

/// The text of corpus slot `i` under edit variant `variant`: variant 0
/// is the original corpus, each bump re-generates the slot from a
/// different seed, so consecutive variants genuinely differ.
fn slot_text(i: usize, n: usize, variant: u64) -> String {
    pretty_program(&workload::corpus(11 + variant, n)[i])
}

/// Renders the (json, sarif) envelope pair from tracked outcomes, the
/// same records `pncheck --delta` emits.
fn envelopes(outcomes: &[TrackedOutcome]) -> (String, String) {
    let records: Vec<FileRecord> = outcomes
        .iter()
        .map(|o| FileRecord {
            path: o.path.clone(),
            report: o.analysis.as_ref().map(|a| a.report.clone()),
            errors: o.errors.clone(),
        })
        .collect();
    (render_json(&records, None, None), render_sarif(&records))
}

/// The from-scratch reference: a fresh engine over the same paths.
fn reference_envelopes(paths: &[String]) -> (String, String) {
    let engine = BatchEngine::new(Analyzer::new());
    let (outcomes, _) = engine.scan_paths_tracked(paths);
    envelopes(&outcomes)
}

/// Old/new summary records of one file, for cone checks.
fn summaries(outcome: &TrackedOutcome) -> Vec<FunctionSummaryRecord> {
    outcome.analysis.as_ref().map_or_else(Vec::new, |a| a.summaries.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_edit_sequences_stay_byte_identical_to_fresh_scans(
        n in 4usize..12,
        edits in proptest::collection::vec((0usize..12, 1u64..5, proptest::bool::ANY), 1..5),
    ) {
        let dir = case_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let paths: Vec<String> = (0..n)
            .map(|i| {
                let path = dir.join(format!("f{i:02}.pnx"));
                std::fs::write(&path, slot_text(i, n, 0)).unwrap();
                path.to_string_lossy().into_owned()
            })
            .collect();

        let engine = BatchEngine::new(Analyzer::new());
        let (cold, _) = engine.scan_paths_tracked(&paths);
        prop_assert_eq!(envelopes(&cold), reference_envelopes(&paths));

        for (slot, variant, use_hint) in edits {
            let i = slot % n;
            std::fs::write(&paths[i], slot_text(i, n, variant)).unwrap();
            let hint = vec![paths[i].clone()];
            let hinted: Option<&[String]> = use_hint.then_some(hint.as_slice());
            let (warm, _, delta) = engine.rescan_delta(&paths, hinted);
            prop_assert!(
                delta.changed_files <= 1,
                "one edit, at most one changed file: {delta:?}"
            );
            prop_assert_eq!(delta.unchanged_files + delta.changed_files, n);
            prop_assert_eq!(
                envelopes(&warm),
                reference_envelopes(&paths),
                "rescan after editing slot {} (variant {}, hint {}) must match a fresh scan",
                i, variant, use_hint
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn changed_functions_and_their_callers_always_land_in_the_cone(
        count in 1usize..4,
        seed_a in 0u64..50,
        seed_b in 50u64..100,
    ) {
        // Fan-in programs have the densest call graphs the workload
        // generates; regenerating from a different seed perturbs the
        // chain tail, whose callers must all be invalidated.
        let dir = case_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hub.pnx");
        let old_src = pretty_program(&workload::fan_in_call_corpus(seed_a, count)[count - 1]);
        let new_src = pretty_program(&workload::fan_in_call_corpus(seed_b, count)[count - 1]);
        std::fs::write(&path, &old_src).unwrap();
        let paths = vec![path.to_string_lossy().into_owned()];

        let engine = BatchEngine::new(Analyzer::new());
        let (cold, _) = engine.scan_paths_tracked(&paths);
        let old = summaries(&cold[0]);

        std::fs::write(&path, &new_src).unwrap();
        let (warm, _, _) = engine.rescan_delta(&paths, None);
        let new = summaries(&warm[0]);
        let (cone, stats) = invalidation_cone(&old, &new);

        // Soundness: any function whose record differs is in the cone…
        for rec in &new {
            let before = old.iter().find(|o| o.function == rec.function);
            let dirty = before.is_none_or(|o| {
                o.fingerprint != rec.fingerprint
                    || o.findings != rec.findings
                    || o.region_effects != rec.region_effects
                    || o.clobbers != rec.clobbers
            });
            if dirty {
                prop_assert!(
                    cone.binary_search(&rec.function).is_ok(),
                    "changed {} missing from cone", rec.function
                );
            }
        }
        // …and so is every transitive caller of a cone member, per the
        // old dependency edges the verdicts were memoized against.
        for rec in &old {
            if rec.deps.iter().any(|d| cone.binary_search(&d.callee).is_ok()) {
                prop_assert!(
                    cone.binary_search(&rec.function).is_ok(),
                    "caller {} of an invalidated callee missing from cone", rec.function
                );
            }
        }
        prop_assert_eq!(stats.cone_functions, cone.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn schema_v2_cache_entries_decode_as_stale_misses_not_corruption() {
    // The interval lattice changed what analysis results mean, so the
    // on-disk schema version was bumped to 3. A well-formed entry from
    // the previous release — same magic, same checksum discipline, but
    // version 2 in bytes [8..12) — must read back as a quiet Miss (the
    // entry is stale, the cache is healthy), never as Corrupt, which
    // would make every upgrade look like disk damage in `--stats`.
    use placement_new_attacks::detector::{
        source_fingerprint, Analyzer, AnalyzerConfig, CacheLookup, CachedAnalysis, PersistentCache,
    };

    let dir = case_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let cache = PersistentCache::open(&dir, &AnalyzerConfig::default()).unwrap();

    let source = pretty_program(&workload::corpus(3, 1)[0]);
    let key = source_fingerprint(&source);
    let program = placement_new_attacks::detector::parse_program(&source).unwrap();
    let entry = CachedAnalysis { report: Analyzer::new().analyze(&program), summaries: Vec::new() };
    cache.put(key, &entry);
    assert_eq!(cache.get(key), CacheLookup::Hit(entry), "freshly written entry must hit");

    // Rewrite the version field to the previous schema, leaving magic,
    // config tag, checksum, and payload untouched.
    let path = dir.join(format!("{key:032x}.pnc"));
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    assert_eq!(cache.get(key), CacheLookup::Miss, "v2 entry must be a stale miss");
    let stats = cache.stats();
    assert_eq!(stats.corrupt, 0, "a stale version is not corruption: {stats:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}
