//! Experiment E20: the protection matrix.
//!
//! Runs the entire attack catalogue under each §5 defense configuration
//! and checks the per-cell expectations:
//!
//! * **none** — the paper's platform: everything demonstrates except what
//!   StackGuard/NX already stop;
//! * **correct coding** (§5.1) — checked placement + sanitization +
//!   placement delete: every attack is stopped;
//! * **library interception** (§5.2) — blocks attacks whose arena the
//!   library can bound (heap blocks, globals) but is blind to stack
//!   arenas and does nothing for leaks;
//! * **shadow stack** (§5.2) — stops exactly the control-flow hijacks
//!   that travel through the return address.

use placement_new_attacks::core::attacks::run_all;
use placement_new_attacks::core::{AttackConfig, AttackKind, Defense};

#[test]
fn correct_coding_stops_every_attack() {
    let cfg = AttackConfig::with_defense(Defense::correct_coding());
    for report in run_all(&cfg).unwrap() {
        assert!(
            !report.succeeded,
            "{}: correct coding must stop the attack: {}",
            report.kind,
            report.verdict()
        );
    }
}

#[test]
fn interception_blocks_global_and_heap_arenas_only() {
    let cfg = AttackConfig::with_defense(Defense::intercept());
    // Arenas the library can see (globals / heap blocks) → blocked.
    let blocked = [
        AttackKind::BssOverflow,
        AttackKind::HeapOverflow,
        AttackKind::GlobalVarMod,
        AttackKind::VarPtrSubterfuge,
        AttackKind::ArrayTwoStepBss,
    ];
    // Stack arenas are invisible to a library (§5.2's caveat) → attacks
    // still land (modulo StackGuard for the smash variants).
    let residual = [
        // Interior pointer into a global: the interceptor sees the whole
        // MobilePlayer region (40 bytes), not the 16-byte member — so the
        // internal overflow slips through.
        AttackKind::InternalOverflow,
        AttackKind::CanaryBypass,
        AttackKind::ArcInjection,
        AttackKind::StackLocalMod,
        AttackKind::MemberVarMod,
        AttackKind::FnPtrSubterfuge,
    ];
    for report in run_all(&cfg).unwrap() {
        if blocked.contains(&report.kind) {
            assert!(
                !report.succeeded,
                "{}: interception should block this, got {}",
                report.kind,
                report.verdict()
            );
            assert_eq!(report.blocked_by.as_deref(), Some("library interceptor"));
        }
        if residual.contains(&report.kind) {
            assert!(
                report.succeeded,
                "{}: a library interceptor cannot bound stack arenas, got {}",
                report.kind,
                report.verdict()
            );
        }
    }
}

#[test]
fn shadow_stack_stops_exactly_the_return_address_hijacks() {
    let mut cfg = AttackConfig::paper();
    cfg.shadow_stack = true;
    cfg.executable_stack = true; // give code injection its best shot
    let protected = [AttackKind::CanaryBypass, AttackKind::ArcInjection, AttackKind::CodeInjection];
    // Attacks that never touch a return address are out of scope for a
    // shadow stack.
    let untouched = [
        AttackKind::BssOverflow,
        AttackKind::GlobalVarMod,
        AttackKind::MemberVarMod,
        AttackKind::VptrSubterfuge,
        AttackKind::FnPtrSubterfuge,
        AttackKind::InfoLeakArray,
        AttackKind::InfoLeakObject,
        AttackKind::MemoryLeak,
    ];
    for report in run_all(&cfg).unwrap() {
        if protected.contains(&report.kind) {
            assert!(
                !report.succeeded,
                "{}: shadow stack should stop it, got {}",
                report.kind,
                report.verdict()
            );
            assert_eq!(report.detected_by.as_deref(), Some("shadow stack"));
        }
        if untouched.contains(&report.kind) {
            assert!(
                report.succeeded,
                "{}: shadow stack is irrelevant here, got {}",
                report.kind,
                report.verdict()
            );
        }
    }
}

#[test]
fn sanitization_alone_stops_only_the_leaks() {
    let defense = Defense { sanitize_reuse: true, ..Defense::none() };
    let cfg = AttackConfig::with_defense(defense);
    for report in run_all(&cfg).unwrap() {
        match report.kind {
            AttackKind::InfoLeakArray | AttackKind::InfoLeakObject => {
                assert!(!report.succeeded, "{}: sanitize should stop leaks", report.kind);
            }
            AttackKind::BssOverflow | AttackKind::GlobalVarMod | AttackKind::CanaryBypass => {
                assert!(report.succeeded, "{}: sanitization does not stop overflows", report.kind);
            }
            _ => {}
        }
    }
}

#[test]
fn placement_delete_alone_stops_only_the_leak() {
    let defense = Defense { placement_delete: true, ..Defense::none() };
    let cfg = AttackConfig::with_defense(defense);
    for report in run_all(&cfg).unwrap() {
        match report.kind {
            AttackKind::MemoryLeak => {
                assert!(!report.succeeded);
                assert_eq!(report.blocked_by.as_deref(), Some("placement delete"));
            }
            AttackKind::BssOverflow | AttackKind::InfoLeakObject => {
                assert!(report.succeeded, "{}: unrelated to placement delete", report.kind);
            }
            _ => {}
        }
    }
}

#[test]
fn matrix_is_total() {
    // Every (defense, attack) cell runs without wiring errors.
    for defense in [Defense::none(), Defense::correct_coding(), Defense::intercept()] {
        let cfg = AttackConfig::with_defense(defense);
        let reports = run_all(&cfg).unwrap();
        assert_eq!(reports.len(), AttackKind::ALL.len());
    }
}
