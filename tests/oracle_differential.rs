//! Differential-oracle guarantees over the seeded executable corpus:
//! the §5.1 soundness property (no machine-observed vulnerability at a
//! site the analyzer cleared) and sensitivity (every generated
//! vulnerable program has at least one machine-confirmed true
//! positive), plus determinism of the whole pipeline.

use placement_new_attacks::corpus::workload;
use placement_new_attacks::detector::oracle::{Matrix, Oracle, Verdict};
use placement_new_attacks::detector::{parse_program, Analyzer};

fn scripts(seed: u64) -> Vec<Vec<i64>> {
    Oracle::default_inputs().into_iter().chain(workload::attack_inputs(seed, 4)).collect()
}

#[test]
fn no_false_negative_anywhere_in_the_seeded_corpus() {
    // Soundness on the generated shapes: whatever the machine observes,
    // the analyzer flagged. One false negative is one analyzer bug.
    let oracle = Oracle::new();
    let scripts = scripts(1);
    for (i, program) in workload::executable_corpus(1, 300).iter().enumerate() {
        let report = oracle.differential_with(program, &scripts);
        assert!(
            report.agrees(),
            "corpus[{i}] ({}): false negatives: {:?}",
            program.name,
            report.verdicts
        );
    }
}

#[test]
fn every_vulnerable_program_has_a_confirmed_true_positive() {
    let oracle = Oracle::new();
    let scripts = scripts(2);
    for seed in 0..60 {
        let program = workload::random_vulnerable_program(seed);
        let report = oracle.differential_with(&program, &scripts);
        assert!(
            report.true_positives() >= 1,
            "seed {seed} ({}): no machine-confirmed site: {:?}",
            program.name,
            report.verdicts
        );
        assert!(report.agrees(), "seed {seed}: {:?}", report.verdicts);
    }
}

#[test]
fn safe_programs_produce_no_events_under_hostile_scripts() {
    let oracle = Oracle::new();
    let scripts = scripts(3);
    for seed in 0..60 {
        let program = workload::random_safe_program(seed);
        let report = oracle.differential_with(&program, &scripts);
        assert!(
            report.events.iter().all(|e| !e.kind.is_vulnerability()),
            "seed {seed} ({}): safe program misbehaved: {:?}",
            program.name,
            report.events
        );
        assert!(report.verdicts.iter().all(|v| v.verdict == Verdict::FalsePositive));
    }
}

#[test]
fn guarded_programs_never_trip_the_machine() {
    // Tainted count behind a bounds check: the analyzer may warn (a
    // tolerated false positive) but the machine must stay quiet — and
    // that disagreement may never be classified as a false negative.
    let oracle = Oracle::new();
    let scripts = scripts(4);
    for seed in 0..60 {
        let program = workload::random_guarded_program(seed);
        let report = oracle.differential_with(&program, &scripts);
        assert!(
            report.events.iter().all(|e| !e.kind.is_vulnerability()),
            "seed {seed}: guard failed concretely: {:?}",
            report.events
        );
        assert!(report.agrees(), "seed {seed}: {:?}", report.verdicts);
    }
}

#[test]
fn the_matrix_over_a_seeded_corpus_is_deterministic() {
    let oracle = Oracle::new();
    let scripts = scripts(5);
    let run = || {
        let mut matrix = Matrix::new();
        for program in workload::executable_corpus(5, 80) {
            matrix.absorb(&oracle.differential_with(&program, &scripts));
        }
        matrix
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b);
    assert_eq!(a.to_string(), b.to_string());
    assert_eq!(a.false_negatives(), 0);
    let (tp, _, _) = a.totals();
    assert!(tp > 0, "corpus produced no confirmed sites:\n{a}");
}

#[test]
fn loop_carried_taint_example_is_flagged_and_confirmed() {
    // The satellite-2 regression: taint reaches the placement only on
    // the second loop iteration. Before the bounded-fixpoint fix the
    // analyzer cleared the site while the machine overflowed — a false
    // negative this exact test exists to keep fixed.
    let source = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/pnx/loop-carried-taint.pnx"
    ))
    .expect("shipped example");
    let program = parse_program(&source).expect("example parses");
    assert!(
        Analyzer::new().analyze(&program).detected(),
        "analyzer regressed on loop-carried taint"
    );
    let report = Oracle::new().differential(&program);
    assert_eq!(report.false_negatives(), 0, "{:?}", report.verdicts);
    assert!(report.true_positives() >= 1, "{:?}", report.verdicts);
}
