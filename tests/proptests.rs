//! Property-based tests over the core substrates.
//!
//! * address space: scalar round-trips, adjacency, permission totality;
//! * layout engine: alignment/containment invariants over random classes;
//! * heap allocator: no-overlap, stats conservation, leak accounting;
//! * checked placement: soundness (never writes outside the arena);
//! * detector: quiet on generated-safe programs, loud on generated-vulnerable ones.

use proptest::prelude::*;

use placement_new_attacks::core::protect::{checked_placement_new_array, Arena};
use placement_new_attacks::core::student::StudentWorld;
use placement_new_attacks::core::AttackConfig;
use placement_new_attacks::corpus::workload;
use placement_new_attacks::detector::{parse_program, pretty_program, Analyzer, Severity};
use placement_new_attacks::memory::{AddressSpace, SegmentKind, VirtAddr};
use placement_new_attacks::object::{ClassRegistry, CxxType, LayoutPolicy};
use placement_new_attacks::runtime::{HeapAllocator, VarDecl};

proptest! {
    #[test]
    fn u32_round_trips_anywhere_in_writable_segments(
        offset in 0u32..0xff00,
        value: u32,
    ) {
        let mut space = AddressSpace::ilp32();
        for kind in [SegmentKind::Data, SegmentKind::Bss, SegmentKind::Heap] {
            let base = space.segment(kind).base();
            space.write_u32(base + offset, value).unwrap();
            prop_assert_eq!(space.read_u32(base + offset).unwrap(), value);
        }
    }

    #[test]
    fn byte_writes_never_bleed_outside_their_range(
        offset in 8u32..0x8000,
        len in 1u32..64,
        fill: u8,
    ) {
        let mut space = AddressSpace::ilp32();
        let base = space.segment(SegmentKind::Heap).base();
        let target = base + offset;
        // Sentinels on both sides.
        space.write_u8(target - 1, 0xEE).unwrap();
        space.write_u8(target + len, 0xEE).unwrap();
        space.fill(target, fill, len).unwrap();
        prop_assert_eq!(space.read_u8(target - 1).unwrap(), 0xEE);
        prop_assert_eq!(space.read_u8(target + len).unwrap(), 0xEE);
        prop_assert_eq!(space.read_vec(target, len).unwrap(), vec![fill; len as usize]);
    }

    #[test]
    fn random_class_layouts_are_well_formed(
        field_kinds in proptest::collection::vec(0u8..5, 1..10),
        with_virtual in proptest::bool::ANY,
    ) {
        let mut reg = ClassRegistry::new();
        let mut builder = reg.class("Fuzz");
        for (i, k) in field_kinds.iter().enumerate() {
            let ty = match k {
                0 => CxxType::Char,
                1 => CxxType::Short,
                2 => CxxType::Int,
                3 => CxxType::Double,
                _ => CxxType::array(CxxType::Int, 3),
            };
            builder = builder.field(&format!("f{i}"), ty);
        }
        if with_virtual {
            builder = builder.virtual_method("m");
        }
        let id = builder.register();
        for policy in [LayoutPolicy::paper(), LayoutPolicy::i386_abi(), LayoutPolicy::lp64()] {
            let layout = reg.layout(id, &policy).unwrap();
            // Size is a positive multiple of the alignment.
            prop_assert!(layout.size() >= 1);
            prop_assert_eq!(layout.size() % layout.align(), 0);
            // Every slot is naturally aligned and inside the object.
            for slot in layout.slots() {
                prop_assert_eq!(slot.offset() % slot.align(), 0);
                prop_assert!(slot.offset() + slot.size() <= layout.size());
            }
            // Slots never overlap.
            let mut spans: Vec<(u32, u32)> = layout
                .slots()
                .iter()
                .map(|s| (s.offset(), s.offset() + s.size()))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlapping slots: {:?}", w);
            }
            // Polymorphic objects put the vptr at offset zero (§3.8.2).
            if with_virtual {
                prop_assert_eq!(layout.primary_vptr_offset(), Some(0));
            }
        }
    }

    #[test]
    fn heap_allocations_never_overlap(sizes in proptest::collection::vec(1u32..256, 1..40)) {
        let mut space = AddressSpace::ilp32();
        let mut heap = HeapAllocator::for_space(&space);
        let mut blocks: Vec<(VirtAddr, u32)> = Vec::new();
        for size in sizes {
            let addr = heap.alloc(&mut space, size).unwrap();
            for &(other, other_size) in &blocks {
                let disjoint = addr + size <= other || other + other_size <= addr;
                prop_assert!(disjoint, "{addr}+{size} overlaps {other}+{other_size}");
            }
            blocks.push((addr, size));
        }
        // Free everything: stats return to zero and memory coalesces.
        let total = heap.largest_free();
        for &(addr, _) in &blocks {
            heap.free(&mut space, addr).unwrap();
        }
        prop_assert_eq!(heap.stats().live_blocks, 0);
        prop_assert_eq!(heap.stats().live_bytes, 0);
        prop_assert!(heap.largest_free() >= total);
    }

    #[test]
    fn heap_against_an_interval_model(
        ops in proptest::collection::vec((0u8..3, 1u32..128), 1..120),
    ) {
        // Differential test: replay a random alloc/free/free_sized script
        // against a trivial interval model and compare live-set geometry
        // and statistics at every step.
        let mut space = AddressSpace::ilp32();
        let mut heap = HeapAllocator::for_space(&space);
        let mut model: Vec<(VirtAddr, u32)> = Vec::new(); // live (addr, payload)
        let mut model_leaked = 0u64;

        for (op, arg) in ops {
            match op {
                0 => {
                    // alloc(arg)
                    if let Ok(addr) = heap.alloc(&mut space, arg) {
                        for &(other, other_len) in &model {
                            let disjoint = addr + arg <= other || other + other_len <= addr;
                            prop_assert!(disjoint, "overlap at {addr}");
                        }
                        model.push((addr, arg));
                    }
                }
                1 => {
                    // free(oldest)
                    if !model.is_empty() {
                        let (addr, _) = model.remove((arg as usize) % model.len());
                        heap.free(&mut space, addr).unwrap();
                    }
                }
                _ => {
                    // free_sized(newest, half)
                    if let Some((addr, len)) = model.pop() {
                        let released = (len / 2).max(1);
                        heap.free_sized(&mut space, addr, released).unwrap();
                        // Reserved lengths round to the 8-byte grain (+8 header).
                        let reserved = |p: u32| 8 + p.max(1).div_ceil(8) * 8;
                        model_leaked += u64::from(reserved(len) - reserved(released).min(reserved(len)));
                    }
                }
            }
            prop_assert_eq!(heap.stats().live_blocks, model.len() as u64);
            prop_assert_eq!(
                heap.stats().live_bytes,
                model.iter().map(|&(_, l)| u64::from(8 + l.max(1).div_ceil(8) * 8 - 8)).sum::<u64>()
            );
            prop_assert_eq!(heap.stats().leaked_bytes, model_leaked);
        }
        // Drain and confirm full recovery minus the leaks.
        for (addr, _) in model {
            heap.free(&mut space, addr).unwrap();
        }
        prop_assert_eq!(heap.stats().live_bytes, 0);
        prop_assert_eq!(
            u64::from(heap.region_size() - heap.total_free()),
            model_leaked
        );
    }

    #[test]
    fn sized_frees_account_exactly(rounds in 1u32..50) {
        let mut space = AddressSpace::ilp32();
        let mut heap = HeapAllocator::for_space(&space);
        for i in 1..=rounds {
            let p = heap.alloc(&mut space, 32).unwrap();
            heap.free_sized(&mut space, p, 16).unwrap();
            prop_assert_eq!(heap.stats().leaked_bytes, u64::from(16 * i));
        }
    }

    #[test]
    fn checked_array_placement_is_sound(
        pool_size in 16u32..256,
        len in 0u32..512,
    ) {
        let world = StudentWorld::plain();
        let mut m = world.machine(&AttackConfig::paper());
        let pool = m
            .define_global("pool", VarDecl::Buffer { size: pool_size, align: 8 }, SegmentKind::Bss)
            .unwrap();
        let guard = m
            .define_global("guard", VarDecl::Ty(CxxType::Int), SegmentKind::Bss)
            .unwrap();
        m.space_mut().write_i32(guard, 0x5AFE).unwrap();

        let arena = Arena::new(pool, pool_size);
        let result = checked_placement_new_array(&mut m, arena, CxxType::Char, len);
        if len <= pool_size {
            prop_assert!(result.is_ok());
            // Writing the *checked* length never escapes the arena.
            let arr = result.unwrap();
            m.memset(arr.addr(), 0xAA, len).unwrap();
        } else {
            prop_assert!(result.is_err());
        }
        prop_assert_eq!(m.space().read_i32(guard).unwrap(), 0x5AFE);
    }

    #[test]
    fn detector_is_quiet_on_generated_safe_programs(seed in 0u64..500) {
        let report = Analyzer::new().analyze(&workload::random_safe_program(seed));
        prop_assert!(
            !report.detected_at(Severity::Warning),
            "seed {seed}: {report}"
        );
    }

    #[test]
    fn detector_flags_generated_vulnerable_programs(seed in 0u64..500) {
        let report = Analyzer::new().analyze(&workload::random_vulnerable_program(seed));
        prop_assert!(report.detected_at(Severity::Warning), "seed {seed}");
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(junk in "\\PC{0,200}") {
        // Errors are fine; panics are not — in strict and recovering mode.
        let _ = parse_program(&junk);
        let _ = parse_program(&format!("program t;\n{junk}"));
        let framed = format!("program t;\nfn f() {{\n{junk}\n}}\n");
        if let Err(errors) = placement_new_attacks::detector::parse_program_recovering(&framed) {
            prop_assert!(!errors.is_empty());
            prop_assert!(errors.len() <= placement_new_attacks::detector::MAX_ERRORS + 1);
            // Recovered errors come out sorted by source position.
            for pair in errors.windows(2) {
                prop_assert!(pair[0].span.byte_offset <= pair[1].span.byte_offset);
            }
        }
    }

    #[test]
    fn generated_programs_round_trip_through_the_dsl(seed in 0u64..2000) {
        let prog = workload::random_safe_program(seed);
        let back = parse_program(&pretty_program(&prog)).expect("reparses");
        prop_assert_eq!(back, prog);
    }

    #[test]
    fn wire_decoder_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        use placement_new_attacks::object::wire::WireObject;
        let _ = WireObject::decode(&bytes); // errors are fine; panics are not
    }

    #[test]
    fn wire_objects_round_trip(
        name in "[A-Za-z][A-Za-z0-9_]{0,20}",
        count: u32,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        use placement_new_attacks::object::wire::WireObject;
        let obj = WireObject::new(&name, payload).with_count(count);
        let back = WireObject::decode(&obj.encode()).unwrap();
        prop_assert_eq!(back, obj);
    }

    #[test]
    fn frame_locals_are_disjoint_and_aligned(
        sizes in proptest::collection::vec((1u32..64, 0u8..4), 1..8),
    ) {
        let world = StudentWorld::plain();
        let mut m = world.machine(&AttackConfig::paper());
        let decls: Vec<(String, VarDecl)> = sizes
            .iter()
            .enumerate()
            .map(|(i, (size, align_pow))| {
                (format!("l{i}"), VarDecl::Buffer { size: *size, align: 1 << align_pow })
            })
            .collect();
        let decl_refs: Vec<(&str, VarDecl)> =
            decls.iter().map(|(n, d)| (n.as_str(), d.clone())).collect();
        m.push_frame("f", &decl_refs).unwrap();
        let frame = m.frame().unwrap();
        let mut spans: Vec<(u64, u64)> = frame
            .locals()
            .iter()
            .map(|l| (u64::from(l.addr().value()), u64::from(l.addr().value()) + u64::from(l.size())))
            .collect();
        for (l, (_, align_pow)) in frame.locals().iter().zip(sizes.iter()) {
            prop_assert!(l.addr().is_aligned(1 << align_pow));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlapping locals");
        }
        // All locals live strictly below the frame metadata.
        let top = frame.canary_slot().unwrap_or(frame.ret_slot());
        for l in frame.locals() {
            prop_assert!(l.end() <= top);
        }
    }
}
