//! The `.pnx` surface syntax round-trips: `parse(pretty(p)) == p` over
//! the entire corpus, for generated programs, and through the fixer.

use placement_new_attacks::corpus::{benign, listings, workload};
use placement_new_attacks::detector::{parse_program, pretty_program, Analyzer, Fixer, Severity};

#[test]
fn every_corpus_program_round_trips() {
    let all: Vec<_> =
        listings::vulnerable_corpus().into_iter().chain(benign::benign_corpus()).collect();
    assert!(all.len() >= 41);
    for prog in all {
        let text = pretty_program(&prog);
        let back = parse_program(&text)
            .unwrap_or_else(|e| panic!("{}: failed to reparse: {e}\n{text}", prog.name));
        assert_eq!(back, prog, "{}: round trip changed the program", prog.name);
    }
}

#[test]
fn analysis_is_invariant_under_round_trip() {
    let analyzer = Analyzer::new();
    for prog in listings::vulnerable_corpus() {
        let direct = analyzer.analyze(&prog);
        let round_tripped = analyzer.analyze(&parse_program(&pretty_program(&prog)).unwrap());
        assert_eq!(direct, round_tripped, "{}", prog.name);
    }
}

#[test]
fn generated_programs_round_trip() {
    for seed in 0..100u64 {
        for prog in [workload::random_safe_program(seed), workload::random_vulnerable_program(seed)]
        {
            let text = pretty_program(&prog);
            let back = parse_program(&text)
                .unwrap_or_else(|e| panic!("{} (seed {seed}): {e}\n{text}", prog.name));
            assert_eq!(back, prog, "seed {seed}");
        }
    }
}

#[test]
fn fixed_programs_round_trip_and_stay_clean() {
    let fixer = Fixer::new();
    let analyzer = Analyzer::new();
    for prog in listings::vulnerable_corpus() {
        let (fixed, _) = fixer.fix(&prog);
        let text = pretty_program(&fixed);
        let back = parse_program(&text).unwrap_or_else(|e| {
            panic!("{}: fixed program failed to reparse: {e}\n{text}", prog.name)
        });
        assert_eq!(back, fixed, "{}", prog.name);
        assert!(
            !analyzer.analyze(&back).detected_at(Severity::Warning),
            "{}: reparsed fixed program has findings",
            prog.name
        );
    }
}
