//! Summary-based interprocedural analysis: equivalence with the inline
//! re-walk engine, the hard depth guard, and cross-run persistent-cache
//! behavior at corpus scale.

use placement_new_attacks::corpus::workload;
use placement_new_attacks::detector::{
    Analyzer, AnalyzerConfig, BatchEngine, Expr, FindingKind, Matrix, Oracle, PersistentCache,
    Program, ProgramBuilder, Severity, Ty,
};

fn summary_analyzer() -> Analyzer {
    Analyzer::with_config(AnalyzerConfig::default())
}

fn inline_analyzer() -> Analyzer {
    Analyzer::with_config(AnalyzerConfig { use_summaries: false, ..AnalyzerConfig::default() })
}

/// A straight call chain `f0 -> f1 -> … -> f{len-1}`, deeper than the
/// analyzer's interprocedural depth limit.
fn chain_program(len: usize) -> Program {
    let mut p = ProgramBuilder::new(&format!("chain-{len}"));
    let pool = p.global("pool", Ty::CharArray(Some(64)));
    for i in 0..len {
        let mut f = p.function(&format!("f{i}"));
        let n = f.param("n", Ty::Int, false);
        if i + 1 < len {
            f.call(&format!("f{}", i + 1), vec![Expr::Var(n)]);
        } else {
            let buf = f.local("buf", Ty::Ptr);
            f.placement_new_array(buf, Expr::addr_of(pool), 1, Expr::Var(n));
        }
        f.finish();
    }
    p.build()
}

/// Two functions calling each other forever.
fn mutually_recursive_pair() -> Program {
    let mut p = ProgramBuilder::new("mutual");
    let mut f = p.function("ping");
    let n = f.param("n", Ty::Int, false);
    f.call("pong", vec![Expr::Var(n)]);
    f.finish();
    let mut f = p.function("pong");
    let n = f.param("n", Ty::Int, false);
    f.call("ping", vec![Expr::Var(n)]);
    f.finish();
    p.build()
}

#[test]
fn summary_findings_match_inline_on_the_full_generated_corpus() {
    // The tentpole's correctness bar: over the complete 1k workload
    // corpus, the summary engine must be byte-identical to the inline
    // re-walk it replaced — same findings, same order, same rendering.
    let programs = workload::corpus(7, 1000);
    let summary = summary_analyzer();
    let inline = inline_analyzer();
    for program in &programs {
        let s = summary.analyze(program);
        let i = inline.analyze(program);
        assert_eq!(s, i, "{}: summary and inline reports diverge", program.name);
        assert_eq!(s.to_string(), i.to_string(), "{}: rendering diverges", program.name);
    }
}

#[test]
fn summary_findings_match_inline_on_deep_and_fan_in_shapes() {
    // The interprocedural stress shapes: a deep diamond lattice (one —
    // its inline walk is exponential, ~500k function walks) and
    // fan-in-heavy chains, clean and vulnerable variants.
    for program in
        workload::deep_call_corpus(11, 1).iter().chain(&workload::fan_in_call_corpus(11, 4))
    {
        let s = summary_analyzer().analyze(program);
        let i = inline_analyzer().analyze(program);
        assert_eq!(s, i, "{}: summary and inline reports diverge", program.name);
    }
}

#[test]
fn depth_limit_yields_a_deterministic_diagnostic_on_a_64_deep_chain() {
    // Regression: exceeding the interprocedural depth limit used to
    // truncate the walk silently. It must now surface as an explicit
    // `analysis-depth-exceeded` Info finding, identically in both
    // engines and across repeated runs.
    let program = chain_program(64);
    let summary = summary_analyzer().analyze(&program);
    let inline = inline_analyzer().analyze(&program);
    assert_eq!(summary, inline);
    assert_eq!(summary, summary_analyzer().analyze(&program), "diagnostic is not deterministic");

    let diagnostics: Vec<_> =
        summary.findings.iter().filter(|f| f.kind == FindingKind::AnalysisDepthExceeded).collect();
    assert!(!diagnostics.is_empty(), "deep chain produced no depth diagnostic: {summary}");
    for d in &diagnostics {
        assert_eq!(d.severity, Severity::Info, "the guard must inform, not warn");
        assert!(d.message.contains("depth limit"), "unhelpful message: {}", d.message);
    }
    // The guard is a coverage note, not a verdict: the chain itself is
    // clean up to the horizon, so nothing may reach Warning.
    assert!(!summary.detected_at(Severity::Warning), "{summary}");
}

#[test]
fn mutual_recursion_terminates_with_diagnostics_in_both_engines() {
    let program = mutually_recursive_pair();
    let summary = summary_analyzer().analyze(&program);
    let inline = inline_analyzer().analyze(&program);
    assert_eq!(summary, inline);
    assert!(
        summary.findings.iter().any(|f| f.kind == FindingKind::AnalysisDepthExceeded),
        "recursion must be reported, not silently abandoned: {summary}"
    );
    assert!(!summary.detected_at(Severity::Warning));
}

#[test]
fn depth_limit_is_generous_enough_for_the_stress_corpora() {
    // The bench corpora (depth 16) sit below the limit: no diagnostic,
    // and the seeded verdicts still come through the whole chain.
    for program in
        workload::deep_call_corpus(23, 2).iter().chain(&workload::fan_in_call_corpus(23, 2))
    {
        let report = summary_analyzer().analyze(program);
        assert!(
            !report.findings.iter().any(|f| f.kind == FindingKind::AnalysisDepthExceeded),
            "{}: depth 16 must be fully analyzed: {report}",
            program.name
        );
    }
}

#[test]
fn oracle_stays_sound_and_complete_under_summaries() {
    // The differential oracle runs the default (summary-based) analyzer
    // against concrete execution: still zero false positives and zero
    // false negatives on the executable corpus.
    let oracle = Oracle::new();
    let mut matrix = Matrix::new();
    for program in &workload::executable_corpus(29, 120) {
        matrix.absorb(&oracle.differential(program));
    }
    let (tp, fp, fn_) = matrix.totals();
    assert!(tp > 0, "corpus produced no true positives");
    assert_eq!(fp, 0, "false positives under summaries");
    assert_eq!(fn_, 0, "false negatives under summaries");
}

#[test]
fn warm_persistent_cache_reproduces_the_corpus_scan_exactly() {
    // Cross-run guarantee at scale: a second engine over the same cache
    // directory serves every report from disk, byte-identical.
    let dir =
        std::env::temp_dir().join(format!("pnx-summary-test-{}-warm-corpus", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sources: Vec<String> = workload::corpus(13, 200)
        .iter()
        .map(placement_new_attacks::detector::pretty_program)
        .collect();

    let analyzer = Analyzer::new();
    let cold_cache = PersistentCache::open(&dir, analyzer.config()).unwrap();
    let cold = BatchEngine::new(analyzer).with_jobs(4).with_persistent_cache(cold_cache);
    let (first, cold_stats) = cold.scan_sources_with_stats(&sources);
    assert_eq!(cold_stats.persistent_hits, 0);

    let analyzer = Analyzer::new();
    let warm_cache = PersistentCache::open(&dir, analyzer.config()).unwrap();
    let warm = BatchEngine::new(analyzer).with_jobs(4).with_persistent_cache(warm_cache);
    let (second, warm_stats) = warm.scan_sources_with_stats(&sources);

    assert_eq!(warm_stats.persistent_hits as usize, sources.len(), "warm run must be 100% hits");
    assert_eq!(warm_stats.persistent_misses, 0);
    assert_eq!(warm_stats.cache_misses, 0, "nothing may reach the analyzer on a warm run");
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.report, b.report);
        assert_eq!(a.summaries, b.summaries);
        assert!(b.from_disk_cache);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
