//! End-to-end reproduction of every runnable listing under the paper's
//! platform configuration — the master table of EXPERIMENTS.md.
//!
//! For each scenario the expected verdict is the one the paper reports:
//! every attack demonstrates, except the naive stack smash (detected by
//! gcc's StackGuard, §5.2), the two-step stack flood (a contiguous copy
//! cannot skip the canary), and code injection (stopped by the NX stack
//! unless the experiment enables an executable one).

use placement_new_attacks::core::{AttackConfig, AttackKind};
use placement_new_attacks::corpus::scenarios;

#[test]
fn paper_verdicts_reproduce() {
    for sc in scenarios() {
        let report = (sc.run)(&AttackConfig::paper())
            .unwrap_or_else(|e| panic!("{} ({}) failed to run: {e}", sc.experiment, sc.listing));
        match report.kind {
            AttackKind::StackSmash | AttackKind::ArrayTwoStepStack => {
                assert_eq!(
                    report.detected_by.as_deref(),
                    Some("stackguard"),
                    "{}: expected StackGuard detection, got {}",
                    sc.experiment,
                    report.verdict()
                );
            }
            AttackKind::CodeInjection => {
                assert!(
                    !report.succeeded,
                    "{}: NX stack must stop shellcode, got {}",
                    sc.experiment,
                    report.verdict()
                );
            }
            _ => {
                assert!(
                    report.succeeded,
                    "{} ({}): expected the paper's success, got {}\n{report}",
                    sc.experiment,
                    sc.listing,
                    report.verdict()
                );
            }
        }
    }
}

#[test]
fn every_report_carries_evidence() {
    for sc in scenarios() {
        let report = (sc.run)(&AttackConfig::paper()).unwrap();
        assert!(!report.evidence.is_empty(), "{}: report should explain itself", sc.experiment);
    }
}

#[test]
fn seeds_only_change_canaries_not_verdicts() {
    for seed in [1u64, 42, 0xdead_beef] {
        let cfg = AttackConfig { seed, ..AttackConfig::paper() };
        for sc in scenarios() {
            let a = (sc.run)(&cfg).unwrap();
            let b = (sc.run)(&AttackConfig::paper()).unwrap();
            assert_eq!(
                a.succeeded, b.succeeded,
                "{}: verdict should be seed-independent",
                sc.experiment
            );
        }
    }
}

#[test]
fn runs_are_deterministic() {
    for sc in scenarios() {
        let a = (sc.run)(&AttackConfig::paper()).unwrap();
        let b = (sc.run)(&AttackConfig::paper()).unwrap();
        assert_eq!(a, b, "{}: identical configs must give identical reports", sc.experiment);
    }
}

#[test]
fn key_measurements_match_the_paper_numbers() {
    use placement_new_attacks::core::attacks;

    // §4.5: leak per iteration = sizeof(GradStudent) - sizeof(Student).
    let leak = attacks::memory_leak::run(&AttackConfig::paper()).unwrap();
    assert_eq!(leak.measurement("leak_per_iteration"), Some(16.0));

    // §3.7.2: exactly 4 bytes of padding between stud and n.
    let local = attacks::stack_local::run(&AttackConfig::paper()).unwrap();
    assert_eq!(local.measurement("padding_bytes"), Some(4.0));

    // §5.2: the selective overwrite leaves the canary intact.
    let bypass = attacks::stack_smash::run_selective(&AttackConfig::paper()).unwrap();
    assert_eq!(bypass.measurement("canary_intact"), Some(1.0));
    assert!(bypass.succeeded);
}
