//! Differential test: the `pncheckd` protocol layer against the
//! one-shot analysis path, over a 200-program generated corpus.
//!
//! Every program from `workload::corpus` is pretty-printed to `.pnx`
//! source and pushed through both paths:
//!
//! * **reference** — exactly what `pncheck --format json -` does: scan
//!   the source through a fresh [`BatchEngine`] and render the
//!   `pncheck-report/1` envelope;
//! * **daemon** — an inline-`source` `analyze` request against a
//!   resident [`Server`].
//!
//! The payloads must be byte-identical for all 200 programs — cold and
//! warm — and the header's `exit` must mirror the CLI's exit-code rule.

use placement_new_attacks::corpus::workload;
use placement_new_attacks::detector::emit::{render_json, FileRecord};
use placement_new_attacks::detector::server::{parse_json, JsonNode, Server, ServerConfig};
use placement_new_attacks::detector::{pretty_program, Analyzer, BatchEngine, Severity};

/// The reference envelope: the exact pipeline `pncheck --format json -`
/// runs for one stdin program.
fn one_shot_envelope(source: &str) -> (String, u64) {
    let engine = BatchEngine::new(Analyzer::new());
    let (outcomes, _) = engine.scan_sources_with_stats(&[source]);
    let outcome = outcomes.into_iter().next().expect("one outcome");
    let record =
        FileRecord { path: "-".to_owned(), report: outcome.report, errors: outcome.errors };
    let exit = if !record.errors.is_empty() {
        2
    } else if record.report.as_ref().is_some_and(|r| r.detected_at(Severity::Warning)) {
        1
    } else {
        0
    };
    (render_json(std::slice::from_ref(&record), None, None), exit)
}

fn json_str(text: &str) -> String {
    let mut out = String::from("\"");
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[test]
fn daemon_envelopes_match_one_shot_analysis_over_200_corpus_programs() {
    let programs = workload::corpus(1, 200);
    assert_eq!(programs.len(), 200);
    let server = Server::new(ServerConfig::default()).expect("server builds");

    let mut mismatches = Vec::new();
    for (round, label) in [(0, "cold"), (1, "warm")] {
        for (i, program) in programs.iter().enumerate() {
            let source = pretty_program(program);
            let (reference, exit) = one_shot_envelope(&source);
            let request = format!(
                "{{\"op\":\"analyze\",\"id\":{},\"source\":{}}}",
                round * 1000 + i,
                json_str(&source)
            );
            let reply = server.handle_line(&request);
            if reply.payload != reference {
                mismatches.push(format!("{label} #{i}: envelope differs"));
                continue;
            }
            let JsonNode::Obj(fields) = parse_json(&reply.header).expect("header parses") else {
                panic!("header not an object: {}", reply.header);
            };
            let got_exit = fields.iter().find(|(k, _)| k == "exit").map(|(_, v)| v.clone());
            if got_exit != Some(JsonNode::Int(exit as i64)) {
                mismatches.push(format!("{label} #{i}: exit {got_exit:?} != {exit}"));
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} mismatches: {:?}",
        mismatches.len(),
        &mismatches[..mismatches.len().min(5)]
    );
}
