//! Differential test: the `pncheckd` protocol layer against the
//! one-shot analysis path, over a 200-program generated corpus.
//!
//! Every program from `workload::corpus` is pretty-printed to `.pnx`
//! source and pushed through both paths:
//!
//! * **reference** — exactly what `pncheck --format json -` does: scan
//!   the source through a fresh [`BatchEngine`] and render the
//!   `pncheck-report/1` envelope;
//! * **daemon** — an inline-`source` `analyze` request against a
//!   resident [`Server`].
//!
//! The payloads must be byte-identical for all 200 programs — cold and
//! warm — and the header's `exit` must mirror the CLI's exit-code rule.

use placement_new_attacks::corpus::workload;
use placement_new_attacks::detector::emit::{render_json, FileRecord};
use placement_new_attacks::detector::server::{parse_json, JsonNode, Server, ServerConfig};
use placement_new_attacks::detector::{pretty_program, Analyzer, BatchEngine, Severity};

/// The reference envelope: the exact pipeline `pncheck --format json -`
/// runs for one stdin program.
fn one_shot_envelope(source: &str) -> (String, u64) {
    let engine = BatchEngine::new(Analyzer::new());
    let (outcomes, _) = engine.scan_sources_with_stats(&[source]);
    let outcome = outcomes.into_iter().next().expect("one outcome");
    let record =
        FileRecord { path: "-".to_owned(), report: outcome.report, errors: outcome.errors };
    let exit = if !record.errors.is_empty() {
        2
    } else if record.report.as_ref().is_some_and(|r| r.detected_at(Severity::Warning)) {
        1
    } else {
        0
    };
    (render_json(std::slice::from_ref(&record), None, None), exit)
}

fn json_str(text: &str) -> String {
    let mut out = String::from("\"");
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[test]
fn daemon_envelopes_match_one_shot_analysis_over_200_corpus_programs() {
    let programs = workload::corpus(1, 200);
    assert_eq!(programs.len(), 200);
    let server = Server::new(ServerConfig::default()).expect("server builds");

    let mut mismatches = Vec::new();
    for (round, label) in [(0, "cold"), (1, "warm")] {
        for (i, program) in programs.iter().enumerate() {
            let source = pretty_program(program);
            let (reference, exit) = one_shot_envelope(&source);
            let request = format!(
                "{{\"op\":\"analyze\",\"id\":{},\"source\":{}}}",
                round * 1000 + i,
                json_str(&source)
            );
            let reply = server.handle_line(&request);
            if reply.payload != reference {
                mismatches.push(format!("{label} #{i}: envelope differs"));
                continue;
            }
            let JsonNode::Obj(fields) = parse_json(&reply.header).expect("header parses") else {
                panic!("header not an object: {}", reply.header);
            };
            let got_exit = fields.iter().find(|(k, _)| k == "exit").map(|(_, v)| v.clone());
            if got_exit != Some(JsonNode::Int(exit as i64)) {
                mismatches.push(format!("{label} #{i}: exit {got_exit:?} != {exit}"));
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} mismatches: {:?}",
        mismatches.len(),
        &mismatches[..mismatches.len().min(5)]
    );
}

/// The reference envelope for a tree on disk: the pipeline a fresh
/// `pncheck --format json DIR` runs, path labels included.
fn full_scan_envelope(paths: &[String]) -> (String, u64) {
    let engine = BatchEngine::new(Analyzer::new());
    let sources: Vec<String> =
        paths.iter().map(|p| std::fs::read_to_string(p).expect("corpus file reads")).collect();
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let (outcomes, _) = engine.scan_sources_with_stats(&refs);
    let records: Vec<FileRecord> = paths
        .iter()
        .zip(outcomes)
        .map(|(path, o)| FileRecord { path: path.clone(), report: o.report, errors: o.errors })
        .collect();
    let had_errors = records.iter().any(|r| !r.errors.is_empty());
    let any =
        records.iter().filter_map(|r| r.report.as_ref()).any(|r| r.detected_at(Severity::Warning));
    let exit = if had_errors {
        2
    } else if any {
        1
    } else {
        0
    };
    (render_json(&records, None, None), exit)
}

/// Incremental daemon rescans must be indistinguishable from full
/// scans: after every round of edits, the `delta` op's payload is
/// byte-identical to what a fresh engine renders for the same tree —
/// whether the round names the changed paths or lets the daemon stat
/// for drift.
#[test]
fn daemon_delta_envelopes_match_full_scans_across_edit_rounds() {
    let dir = std::env::temp_dir().join(format!("pnx-delta-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let programs = workload::corpus(3, 60);
    let paths: Vec<String> = programs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let path = dir.join(format!("p{i:03}.pnx"));
            std::fs::write(&path, pretty_program(p)).unwrap();
            path.to_string_lossy().into_owned()
        })
        .collect();
    let path_args: Vec<String> = paths.iter().map(|p| json_str(p)).collect();
    let path_list = format!("[{}]", path_args.join(","));

    let server = Server::new(ServerConfig::default()).expect("server builds");
    let check = |label: &str, changed: Option<&[usize]>| {
        let request = match changed {
            None => format!("{{\"op\":\"delta\",\"paths\":{path_list}}}"),
            Some(idx) => {
                let hint: Vec<String> = idx.iter().map(|&i| json_str(&paths[i])).collect();
                format!(
                    "{{\"op\":\"delta\",\"paths\":{path_list},\"changed\":[{}]}}",
                    hint.join(",")
                )
            }
        };
        let reply = server.handle_line(&request);
        let (reference, exit) = full_scan_envelope(&paths);
        assert_eq!(reply.payload, reference, "{label}: delta payload differs from a full scan");
        let JsonNode::Obj(fields) = parse_json(&reply.header).expect("header parses") else {
            panic!("{label}: header not an object: {}", reply.header);
        };
        let got = fields.iter().find(|(k, _)| k == "exit").map(|(_, v)| v.clone());
        assert_eq!(got, Some(JsonNode::Int(exit as i64)), "{label}: exit differs");
    };

    check("cold", None);
    check("no-op rescan", None);

    // Swap a safe program for a vulnerable one and back, catching each
    // round both ways: by stat drift and by client-named hint.
    let evil = pretty_program(&workload::random_vulnerable_program(99));
    let original = std::fs::read_to_string(&paths[7]).unwrap();
    std::fs::write(&paths[7], &evil).unwrap();
    check("edit by drift", None);
    std::fs::write(&paths[7], &original).unwrap();
    check("revert by hint", Some(&[7]));

    // A multi-file round: three edits at once, hinted.
    for i in [2usize, 30, 59] {
        std::fs::write(&paths[i], &evil).unwrap();
    }
    check("three edits by hint", Some(&[2, 30, 59]));
    let _ = std::fs::remove_dir_all(&dir);
}
