//! Model-based testing of the Listing 13 machine.
//!
//! An independent, tiny model predicts the outcome of the stack smash for
//! *any* attacker script from first principles (the §3.6.1 slot
//! arithmetic: which `ssn[i]` aliases the canary / saved FP / return
//! address under each protection), and the property test checks the real
//! machine agrees on hundreds of random scripts. This is how we know the
//! frame geometry is right everywhere, not just on the paper's three
//! scripted inputs.

use proptest::prelude::*;

use placement_new_attacks::core::student::StudentWorld;
use placement_new_attacks::core::{placement_new, AttackConfig};
use placement_new_attacks::runtime::{
    ControlOutcome, Machine, Privilege, StackProtection, VarDecl,
};

/// What the model predicts for one script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Predicted {
    /// Nothing relevant was overwritten.
    Return,
    /// The canary word was changed: StackGuard aborts.
    CanaryDetected,
    /// The return address was redirected to the registered function.
    HijackSystem,
    /// The return address was redirected somewhere non-executable.
    Fault,
}

/// Runs the Listing 13 victim with `script` and returns the machine's
/// outcome next to the model's prediction.
fn run_and_predict(protection: StackProtection, script: [i64; 3]) -> (ControlOutcome, Predicted) {
    let world = StudentWorld::plain();
    let cfg = AttackConfig::with_protection(protection);
    let mut m: Machine = world.machine(&cfg);
    let system = m.register_function("system", Privilege::Privileged);
    let system_addr = m.funcs().def(system).addr();

    m.push_frame("main", &[("argbuf", VarDecl::char_buf(256))]).unwrap();
    m.push_frame("addStudent", &[("stud", VarDecl::Class(world.student))]).unwrap();
    let stud = m.local_addr("stud").unwrap();
    let frame = m.frame().unwrap();
    let ssn_base = stud + 16;
    let slot_index = |addr| (u64::from(u32::from(addr)) - u64::from(u32::from(ssn_base))) / 4;
    let canary_index = frame.canary_slot().map(slot_index);
    let ret_index = slot_index(frame.ret_slot());

    // The victim's guarded input loop.
    let gs = placement_new(&mut m, stud, world.grad).unwrap();
    for (i, &v) in script.iter().enumerate() {
        if v > 0 {
            gs.write_elem_i32(&mut m, "ssn", i as u32, v as i32).unwrap();
        }
    }

    // The model: replay the writes over a symbolic frame.
    let written =
        |idx: u64| -> Option<i64> { script.get(idx as usize).copied().filter(|&v| v > 0) };
    let canary_value = i64::from(m.canary());
    let predicted = if canary_index.and_then(written).is_some_and(|v| v != canary_value) {
        Predicted::CanaryDetected
    } else {
        match written(ret_index) {
            None => Predicted::Return,
            Some(v) if v == i64::from(u32::from(system_addr)) => Predicted::HijackSystem,
            Some(_) => Predicted::Fault,
        }
    };

    let outcome = m.ret().unwrap().outcome;
    (outcome, predicted)
}

fn agree(outcome: &ControlOutcome, predicted: Predicted) -> bool {
    match predicted {
        Predicted::Return => matches!(outcome, ControlOutcome::Return),
        Predicted::CanaryDetected => matches!(outcome, ControlOutcome::CanaryDetected { .. }),
        Predicted::HijackSystem => {
            matches!(outcome, ControlOutcome::Hijacked { name, .. } if name == "system")
        }
        // Redirection to an arbitrary positive word: anything but a clean
        // return — fault, shellcode region, or an accidental function hit.
        Predicted::Fault => !matches!(outcome, ControlOutcome::Return),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn machine_matches_the_model_under_stackguard(
        a in -10i64..0x7fff_ffff,
        b in -10i64..0x7fff_ffff,
        c in -10i64..0x7fff_ffff,
    ) {
        let (outcome, predicted) = run_and_predict(StackProtection::StackGuard, [a, b, c]);
        prop_assert!(
            agree(&outcome, predicted),
            "script [{a},{b},{c}]: machine said {outcome:?}, model said {predicted:?}"
        );
    }

    #[test]
    fn machine_matches_the_model_without_protection(
        a in -10i64..0x7fff_ffff,
        b in -10i64..0x7fff_ffff,
        c in -10i64..0x7fff_ffff,
    ) {
        let (outcome, predicted) = run_and_predict(StackProtection::None, [a, b, c]);
        prop_assert!(agree(&outcome, predicted), "machine {outcome:?} vs model {predicted:?}");
    }

    #[test]
    fn machine_matches_the_model_with_frame_pointer(
        a in -10i64..0x7fff_ffff,
        b in -10i64..0x7fff_ffff,
        c in -10i64..0x7fff_ffff,
    ) {
        let (outcome, predicted) = run_and_predict(StackProtection::FramePointer, [a, b, c]);
        prop_assert!(agree(&outcome, predicted), "machine {outcome:?} vs model {predicted:?}");
    }

    #[test]
    fn targeted_scripts_always_hijack(protection_pick in 0u8..3) {
        // For every protection, the adaptive selective script hijacks.
        let protection = match protection_pick {
            0 => StackProtection::None,
            1 => StackProtection::FramePointer,
            _ => StackProtection::StackGuard,
        };
        // Recompute the index like the attack module does: 0/1/2.
        let ret_index = match protection {
            StackProtection::None => 0usize,
            StackProtection::FramePointer => 1,
            StackProtection::StackGuard => 2,
        };
        let mut script = [-1i64; 3];
        script[ret_index] = i64::from(0x0804_8100u32); // first function entry
        let (outcome, predicted) = run_and_predict(protection, script);
        prop_assert_eq!(predicted, Predicted::HijackSystem);
        prop_assert!(agree(&outcome, predicted));
    }
}

#[test]
fn frame_geometry_is_aslr_invariant() {
    // The relative slot arithmetic the attacks rely on does not move when
    // the segments slide: under ASLR the return address is still ssn[2]
    // away from the object under StackGuard.
    use placement_new_attacks::core::student::StudentWorld;
    use placement_new_attacks::runtime::MachineBuilder;

    let world = StudentWorld::plain();
    for seed in 1..=8u64 {
        let mut m = MachineBuilder::new().aslr(seed).build(world.registry.clone());
        m.push_frame("main", &[("argbuf", VarDecl::char_buf(64))]).unwrap();
        m.push_frame("addStudent", &[("stud", VarDecl::Class(world.student))]).unwrap();
        let stud = m.local_addr("stud").unwrap();
        let ret = m.frame().unwrap().ret_slot();
        assert_eq!(ret.offset_from(stud + 16) / 4, 2, "seed {seed}");
    }
}
