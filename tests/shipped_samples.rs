//! The `.pnx` samples shipped in `examples/pnx/` stay parseable, stay in
//! sync with the corpus, and produce the documented verdicts.

use std::path::Path;

use placement_new_attacks::corpus::{benign, listings};
use placement_new_attacks::detector::{
    parse_program, pretty_program, Analyzer, BaselineChecker, Severity,
};

fn sample(name: &str) -> String {
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/pnx").join(format!("{name}.pnx"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing shipped sample {}: {e}", path.display()))
}

#[test]
fn shipped_samples_parse_and_verdict_as_documented() {
    let analyzer = Analyzer::new();
    let cases = [
        ("listing-04-construction", true),
        ("listing-19-two-step-stack", true),
        ("listing-21-info-leak-array", true),
        ("listing-23-memory-leak", true),
        ("listing-08b-interprocedural", true),
        ("loop-carried-taint", true),
        ("benign-guarded-count", false),
    ];
    for (name, vulnerable) in cases {
        let program = parse_program(&sample(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = analyzer.analyze(&program);
        assert_eq!(
            report.detected_at(Severity::Warning),
            vulnerable,
            "{name}: unexpected verdict: {report}"
        );
    }
}

#[test]
fn shipped_samples_match_the_corpus() {
    // Drift guard: the checked-in files are exactly what corpus-export
    // would regenerate.
    let all: Vec<_> =
        listings::vulnerable_corpus().into_iter().chain(benign::benign_corpus()).collect();
    for entry in std::fs::read_dir(Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/pnx"))
        .expect("samples dir exists")
    {
        let path = entry.expect("dir entry").path();
        let name = path.file_stem().and_then(|s| s.to_str()).expect("utf-8 name");
        let shipped = std::fs::read_to_string(&path).expect("readable sample");
        let canonical = all
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("{name} is not in the corpus"));
        assert_eq!(
            shipped,
            pretty_program(canonical),
            "{name}: shipped sample drifted from the corpus; re-run corpus-export"
        );
    }
}

#[test]
fn baseline_is_blind_to_the_shipped_vulnerable_samples() {
    let baseline = BaselineChecker::new();
    for name in ["listing-04-construction", "listing-19-two-step-stack", "listing-23-memory-leak"] {
        let program = parse_program(&sample(name)).unwrap();
        assert!(!baseline.analyze(&program).detected(), "{name}");
    }
}
