//! Experiment E22: layout ablation.
//!
//! The paper's slot arithmetic ("ssn[0] hits the canary", "ssn[1]
//! overwrites n because of 4 bytes of padding") is a function of the
//! platform's layout rules. This experiment varies the rules —
//! paper platform (8-byte doubles), strict i386 struct ABI (4-byte
//! doubles), and LP64 — and checks which victim word each `ssn[i]` lands
//! on, demonstrating that the attacks are layout-brittle in exactly the
//! way §3.7.2's "Alignment Issues" paragraph warns.

use placement_new_attacks::core::attacks::{stack_local, stack_smash};
use placement_new_attacks::core::student::StudentWorld;
use placement_new_attacks::core::AttackConfig;
use placement_new_attacks::object::LayoutPolicy;
use placement_new_attacks::runtime::VarDecl;

#[test]
fn paper_policy_reproduces_the_published_arithmetic() {
    let cfg = AttackConfig::paper();
    // ssn[2] = return address under StackGuard (canary + fp before it).
    let r = stack_smash::run_selective(&cfg).unwrap();
    assert!(r.evidence.iter().any(|e| e.contains("ssn[2]")), "{:?}", r.evidence);
    // 4 bytes of padding between stud and n.
    let r = stack_local::run(&cfg).unwrap();
    assert_eq!(r.measurement("padding_bytes"), Some(4.0));
    assert!(r.succeeded);
}

#[test]
fn i386_abi_moves_the_victim_words() {
    let mut cfg = AttackConfig::paper();
    cfg.policy = LayoutPolicy::i386_abi();
    // Student aligns to 4: no padding, so the Listing 15 script (which
    // aims at ssn[1]) misses.
    let r = stack_local::run(&cfg).unwrap();
    assert_eq!(r.measurement("padding_bytes"), Some(0.0));
    assert!(!r.succeeded);
    // The selective smash still works — it recomputes the return-address
    // index from the actual frame, like a real attacker would.
    let r = stack_smash::run_selective(&cfg).unwrap();
    assert!(r.succeeded);
}

#[test]
fn lp64_doubles_the_metadata_words() {
    let mut cfg = AttackConfig::paper();
    cfg.policy = LayoutPolicy::lp64();
    // Pointer-sized words are 8 bytes: canary+fp+ret = 24 bytes above the
    // object, so the 4-byte ssn writes can no longer reach the return
    // address at its old index. The adaptive attack recomputes and still
    // lands (ssn[] slots step by 4 but the machine lets the attacker pick
    // the right one).
    let r = stack_smash::run_selective(&cfg).unwrap();
    // The return address is at (canary 8 + fp 8) = 16 bytes above ssn[0]
    // → index 4 — out of ssn[0..3]'s range, so the scripted attack
    // *fails* on LP64: the paper's arithmetic is ILP32-specific.
    assert!(!r.succeeded, "{}", r.verdict());
}

#[test]
fn sizeof_matrix_across_policies() {
    // The sizes every experiment quotes, across the three policies.
    let expectations = [
        (LayoutPolicy::paper(), 16u32, 32u32, 24u32, 40u32),
        (LayoutPolicy::i386_abi(), 16, 28, 20, 32),
        (LayoutPolicy::lp64(), 16, 32, 24, 40),
    ];
    for (policy, s_plain, g_plain, s_virt, g_virt) in expectations {
        let plain = StudentWorld::plain();
        let virt = StudentWorld::with_virtuals();
        assert_eq!(
            plain.registry.size_of(plain.student, &policy).unwrap(),
            s_plain,
            "Student under {policy}"
        );
        assert_eq!(
            plain.registry.size_of(plain.grad, &policy).unwrap(),
            g_plain,
            "GradStudent under {policy}"
        );
        assert_eq!(
            virt.registry.size_of(virt.student, &policy).unwrap(),
            s_virt,
            "virtual Student under {policy}"
        );
        assert_eq!(
            virt.registry.size_of(virt.grad, &policy).unwrap(),
            g_virt,
            "virtual GradStudent under {policy}"
        );
    }
}

#[test]
fn frame_geometry_table() {
    // The full ssn[i] → victim mapping for Listing 13 under each
    // protection, asserted from the real frame plan.
    use placement_new_attacks::runtime::StackProtection;

    for (protection, expected_ret_index) in [
        (StackProtection::None, 0u64),
        (StackProtection::FramePointer, 1),
        (StackProtection::StackGuard, 2),
    ] {
        let world = StudentWorld::plain();
        let mut cfg = AttackConfig::paper();
        cfg.protection = protection;
        let mut m = world.machine(&cfg);
        m.push_frame("main", &[("argbuf", VarDecl::char_buf(64))]).unwrap();
        m.push_frame("addStudent", &[("stud", VarDecl::Class(world.student))]).unwrap();
        let stud = m.local_addr("stud").unwrap();
        let ret = m.frame().unwrap().ret_slot();
        let index = ret.offset_from(stud + 16) / 4;
        assert_eq!(index, expected_ret_index, "under {protection}");
    }
}
