//! Analyzer-precision guarantees over the guarded corpus: the interval
//! lattice must kill the false positives that boolean-taint analysis
//! produced on bounded counts, without opening a single false negative,
//! and the measurement itself must be byte-deterministic.
//!
//! The corpus cycles through seven guard shapes
//! ([`workload::GUARDED_SHAPES`]). Under the pre-lattice analyzer five
//! of the seven produced a false positive (`reversed`, `clobber`,
//! `loop`, `subtraction`, `negative` — everything except the
//! straight-order `tight` guard it special-cased and the `loose` guard,
//! whose warning a probe confirms). Under the interval lattice only
//! `clobber` may remain: its warning is the paper's §4 point — the
//! oversized placement ahead of the guarded one can rewrite the checked
//! variable, and the simulated machine does not model that rewrite.

use placement_new_attacks::corpus::workload::{self, GUARDED_SHAPES};
use placement_new_attacks::detector::emit::{render_json, render_sarif, FileRecord};
use placement_new_attacks::detector::oracle::{Matrix, Oracle};
use placement_new_attacks::detector::{Analyzer, AnalyzerConfig, BatchEngine, Severity};

const SEED: u64 = 7;
const COUNT: usize = 70; // ten full cycles of the seven shapes

/// False positives per seven-shape cycle under the boolean-taint
/// analyzer this PR replaces (measured before the lattice landed, and
/// derivable from the shapes: only `tight` and `loose` stayed clean).
const PRE_LATTICE_FP_PER_CYCLE: usize = 5;

#[test]
fn interval_lattice_kills_guarded_false_positives_without_false_negatives() {
    let oracle = Oracle::new();
    let mut matrix = Matrix::new();
    for case in workload::guarded_corpus(SEED, COUNT) {
        matrix.absorb(&oracle.differential_with(&case.program, &case.probes));
    }
    let (tp, fp, fnn) = matrix.totals();
    let cycles = COUNT / GUARDED_SHAPES.len();

    // Soundness is non-negotiable: the precision work must not have
    // traded away a single machine-observed overflow.
    assert_eq!(fnn, 0, "false negatives on the guarded corpus:\n{matrix}");
    // Only the guard-then-clobber shape may still warn spuriously.
    assert_eq!(fp as usize, cycles, "unexpected false-positive set:\n{matrix}");
    assert!(
        (fp as usize) < PRE_LATTICE_FP_PER_CYCLE * cycles,
        "no precision gained over the boolean-taint analyzer:\n{matrix}"
    );
    // The loose guards and the clobber sites stay confirmed.
    assert!(tp >= 2 * cycles as u64, "lost true positives:\n{matrix}");
}

#[test]
fn every_runtime_safe_non_clobber_shape_is_fully_suppressed() {
    // Sharper than the aggregate matrix: per shape, runtime-safe cases
    // must produce *no* Warning+ finding at all.
    let analyzer = Analyzer::new();
    for case in workload::guarded_corpus(11, 35) {
        let name = &case.program.name;
        if case.runtime_vulnerable {
            continue;
        }
        let report = analyzer.analyze(&case.program);
        assert!(
            !report.detected_at(Severity::Warning),
            "{name}: guarded shape still flagged: {report}"
        );
    }
}

#[test]
fn guarded_scan_is_byte_deterministic_across_jobs_and_summary_modes() {
    let programs: Vec<_> =
        workload::guarded_corpus(SEED, COUNT).into_iter().map(|c| c.program).collect();
    let render = |jobs: usize, use_summaries: bool| {
        let analyzer =
            Analyzer::with_config(AnalyzerConfig { use_summaries, ..Default::default() });
        let reports = BatchEngine::new(analyzer).with_jobs(jobs).scan(&programs);
        let records: Vec<FileRecord> = reports
            .into_iter()
            .enumerate()
            .map(|(i, report)| FileRecord {
                path: format!("guarded:{i}"),
                report: Some(report),
                errors: Vec::new(),
            })
            .collect();
        (render_json(&records, None, None), render_sarif(&records))
    };
    let baseline = render(1, true);
    for (jobs, summaries) in [(4, true), (1, false), (4, false)] {
        assert_eq!(
            render(jobs, summaries),
            baseline,
            "output drifted at jobs={jobs} summaries={summaries}"
        );
    }
}

#[test]
fn loose_guard_width_is_visible_in_json_and_sarif() {
    // At least one unguarded-in-practice listing must carry the concrete
    // worst-case width into both machine formats.
    let case = workload::guarded_corpus(SEED, COUNT)
        .into_iter()
        .find(|c| c.program.name.starts_with("gen-guardcase-loose-"))
        .expect("loose shape in the corpus");
    let report = Analyzer::new().analyze(&case.program);
    let flagged = report.findings.iter().find(|f| f.width.is_some()).expect("a measured finding");
    let width = flagged.width.unwrap();
    assert!(width > 0);

    let records =
        [FileRecord { path: "loose.pnx".into(), report: Some(report), errors: Vec::new() }];
    let json = render_json(&records, None, None);
    assert!(json.contains(&format!("\"width\": {width}")), "{json}");
    let sarif = render_sarif(&records);
    assert!(sarif.contains(&format!("\"overflowWidthBytes\": {width}")), "{sarif}");
}
