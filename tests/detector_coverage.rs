//! Experiment E21: detector coverage versus the traditional baseline.
//!
//! The paper's §1 claim — "none of the existing tools can detect buffer
//! overflow vulnerabilities due to placement new" — becomes a measurable
//! pair of rates over the corpus: our analyzer must flag every listing
//! with zero warning-level false positives on the benign set, while the
//! traditional baseline flags none of the listings.

use std::collections::BTreeMap;

use placement_new_attacks::corpus::{benign, listings};
use placement_new_attacks::detector::{Analyzer, BaselineChecker, FindingKind, Fixer, Severity};

#[test]
fn analyzer_detects_all_listings_baseline_detects_none() {
    let analyzer = Analyzer::new();
    let baseline = BaselineChecker::new();
    let corpus = listings::vulnerable_corpus();
    assert!(corpus.len() >= 24);

    let ours = corpus.iter().filter(|p| analyzer.analyze(p).detected()).count();
    let theirs = corpus.iter().filter(|p| baseline.analyze(p).detected()).count();
    assert_eq!(ours, corpus.len(), "the analyzer must flag every listing");
    assert_eq!(theirs, 0, "the baseline must be blind to placement new");
}

#[test]
fn no_warning_level_false_positives_on_benign_programs() {
    let analyzer = Analyzer::new();
    for prog in benign::benign_corpus() {
        let report = analyzer.analyze(&prog);
        assert!(
            !report.detected_at(Severity::Warning),
            "{}: false positive(s): {report}",
            prog.name
        );
    }
}

#[test]
fn finding_kinds_match_the_paper_taxonomy() {
    let analyzer = Analyzer::new();
    let expected: &[(&str, FindingKind)] = &[
        ("listing-04-construction", FindingKind::OversizedPlacement),
        ("listing-05-remote-count", FindingKind::TaintedPlacementSize),
        ("listing-07-copy-ctor", FindingKind::TaintedPlacementSize),
        ("listing-11-bss", FindingKind::OversizedPlacement),
        ("listing-12-heap", FindingKind::OversizedPlacement),
        ("listing-13-stack", FindingKind::OversizedPlacement),
        ("listing-vptr-subterfuge", FindingKind::VptrClobber),
        ("listing-19-two-step-stack", FindingKind::TaintedCopyThroughPool),
        ("listing-20-two-step-bss", FindingKind::TaintedCopyThroughPool),
        ("listing-21-info-leak-array", FindingKind::UnsanitizedArenaReuse),
        ("listing-22-info-leak-object", FindingKind::UnsanitizedArenaReuse),
        ("listing-23-memory-leak", FindingKind::PlacementLeak),
        ("listing-scalar-arena", FindingKind::OversizedPlacement),
        ("listing-unknown-bounds", FindingKind::UnknownBoundsPlacement),
    ];
    let corpus: BTreeMap<String, _> =
        listings::vulnerable_corpus().into_iter().map(|p| (p.name.clone(), p)).collect();
    for (name, kind) in expected {
        let prog = corpus.get(*name).unwrap_or_else(|| panic!("missing {name}"));
        let report = analyzer.analyze(prog);
        assert!(
            !report.of_kind(*kind).is_empty(),
            "{name}: expected a {kind} finding, got: {report}"
        );
    }
}

#[test]
fn oversized_findings_quote_the_layout_numbers() {
    let analyzer = Analyzer::new();
    let corpus = listings::vulnerable_corpus();
    let l4 = corpus.iter().find(|p| p.name == "listing-04-construction").unwrap();
    let report = analyzer.analyze(l4);
    let finding = &report.of_kind(FindingKind::OversizedPlacement)[0];
    // 32 - 16 = 16, straight from the layout engine.
    assert!(finding.message.contains("32 bytes"), "{}", finding.message);
    assert!(finding.message.contains("16-byte arena"), "{}", finding.message);
    assert!(finding.message.contains("overflows by 16 bytes"), "{}", finding.message);
}

#[test]
fn detection_rates_summary() {
    // The headline E21 numbers, asserted as a tuple so the experiment
    // report can cite this test directly.
    let analyzer = Analyzer::new();
    let baseline = BaselineChecker::new();
    let vulnerable = listings::vulnerable_corpus();
    let benign = benign::benign_corpus();

    let analyzer_detection = vulnerable.iter().filter(|p| analyzer.analyze(p).detected()).count()
        as f64
        / vulnerable.len() as f64;
    let baseline_detection = vulnerable.iter().filter(|p| baseline.analyze(p).detected()).count()
        as f64
        / vulnerable.len() as f64;
    let analyzer_fp =
        benign.iter().filter(|p| analyzer.analyze(p).detected_at(Severity::Warning)).count() as f64
            / benign.len() as f64;

    assert_eq!((analyzer_detection, baseline_detection, analyzer_fp), (1.0, 0.0, 0.0));
}

#[test]
fn fixer_remediates_every_listing() {
    // §7: the tool also "automatically address[es] these vulnerabilities".
    // Every vulnerable listing must re-analyze clean (no warning-or-better
    // findings) after the automatic fix.
    let analyzer = Analyzer::new();
    let fixer = Fixer::new();
    for prog in listings::vulnerable_corpus() {
        let (fixed, fixes) = fixer.fix(&prog);
        if prog.name == "listing-unknown-bounds" {
            // Nothing above Info to fix; §5.1 says no tool can size a bare
            // address.
            assert!(fixes.is_empty(), "{}", prog.name);
            continue;
        }
        assert!(!fixes.is_empty(), "{}: expected at least one fix", prog.name);
        let after = analyzer.analyze(&fixed);
        assert!(
            !after.detected_at(Severity::Warning),
            "{}: residual findings after fixing: {after}",
            prog.name
        );
    }
}

#[test]
fn fixer_leaves_benign_programs_untouched() {
    let fixer = Fixer::new();
    for prog in benign::benign_corpus() {
        let (fixed, fixes) = fixer.fix(&prog);
        assert!(fixes.is_empty(), "{}: spurious fixes: {fixes:?}", prog.name);
        assert_eq!(fixed, prog, "{}: program changed", prog.name);
    }
}

#[test]
fn fixer_is_idempotent_over_the_corpus() {
    let fixer = Fixer::new();
    for prog in listings::vulnerable_corpus() {
        let (once, _) = fixer.fix(&prog);
        let (twice, again) = fixer.fix(&once);
        assert!(again.is_empty(), "{}: second pass found more to fix", prog.name);
        assert_eq!(once, twice, "{}", prog.name);
    }
}
