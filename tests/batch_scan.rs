//! Determinism and cache guarantees of the batch analysis engine,
//! exercised over a generated corpus at realistic scale.

use placement_new_attacks::corpus::workload;
use placement_new_attacks::detector::{Analyzer, BatchEngine};

#[test]
fn findings_are_identical_and_ordered_regardless_of_jobs() {
    let programs = workload::corpus(7, 200);

    let serial_engine = BatchEngine::new(Analyzer::new()).with_jobs(1);
    let parallel_engine = BatchEngine::new(Analyzer::new()).with_jobs(8);
    let serial = serial_engine.scan(&programs);
    let parallel = parallel_engine.scan(&programs);

    // Reports come back in input order…
    assert_eq!(serial.len(), programs.len());
    for (program, report) in programs.iter().zip(&serial) {
        assert_eq!(program.name, report.program);
    }
    // …and are byte-identical between 1 and 8 workers, finding by
    // finding (rendered form included, so ordering inside each report
    // is pinned down too).
    assert_eq!(serial, parallel);
    let serial_text: Vec<String> = serial.iter().map(ToString::to_string).collect();
    let parallel_text: Vec<String> = parallel.iter().map(ToString::to_string).collect();
    assert_eq!(serial_text, parallel_text);
}

#[test]
fn rescanning_an_unchanged_corpus_exceeds_90_percent_hit_rate() {
    let programs = workload::corpus(21, 200);
    let engine = BatchEngine::new(Analyzer::new()).with_jobs(4);

    let (first_reports, first) = engine.scan_with_stats(&programs);
    assert_eq!(first.cache_hits, 0);

    // Regenerate the corpus rather than reusing the same values: the
    // fingerprint must be content-derived, not identity-derived.
    let regenerated = workload::corpus(21, 200);
    let (second_reports, second) = engine.scan_with_stats(&regenerated);
    assert!(
        second.cache_hit_rate() > 0.9,
        "hit rate {:.2} (hits {}, misses {})",
        second.cache_hit_rate(),
        second.cache_hits,
        second.cache_misses
    );
    assert_eq!(first_reports, second_reports);
}
