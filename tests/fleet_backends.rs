//! Differential soak: the `dir` and `indexed` cache backends must be
//! observationally identical.
//!
//! The same seeded workload is pushed through two resident servers that
//! differ **only** in `--cache-backend`. Every protocol observation —
//! cold and warm `analyze` envelopes in json and sarif, cold and warm
//! `delta` envelopes, exit codes, and the complete `analysis` counter
//! block of the `stats` op (fingerprint tiers, parse counts, and the
//! persistent hit/miss/store accounting) — must be byte-identical
//! between the two. A restart over each populated cache must then serve
//! the whole tree from disk with zero parses.
//!
//! The second test kills a compaction halfway — a stale
//! `cache.pnxi.compact.tmp` plus a torn record appended to the live
//! store — and proves a restarted daemon heals: the partial compaction
//! is discarded, the torn tail is truncated, and every entry written
//! before the crash is still served without a single re-parse.

use std::path::{Path, PathBuf};

use placement_new_attacks::corpus::workload;
use placement_new_attacks::detector::server::{parse_json, JsonNode, Server, ServerConfig};
use placement_new_attacks::detector::{pretty_program, BackendKind};

/// JSON string literal, written independently of the server's
/// serializer (the client side of the protocol).
fn json_str(text: &str) -> String {
    let mut out = String::from("\"");
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct TempTree {
    root: PathBuf,
    path_list: String,
    files: usize,
}

impl TempTree {
    /// Writes the seeded corpus to disk once; both backends scan the
    /// same paths so their envelopes are comparable byte for byte.
    fn new(tag: &str, seed: u64, count: usize) -> TempTree {
        let root = std::env::temp_dir().join(format!("pnx-fleet-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        let programs = workload::corpus(seed, count);
        let paths: Vec<String> = programs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let path = root.join(format!("p{i:03}.pnx"));
                std::fs::write(&path, pretty_program(p)).unwrap();
                path.to_string_lossy().into_owned()
            })
            .collect();
        let quoted: Vec<String> = paths.iter().map(|p| json_str(p)).collect();
        TempTree { root, path_list: format!("[{}]", quoted.join(",")), files: paths.len() }
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn server_with(cache: &Path, backend: BackendKind) -> Server {
    let config = ServerConfig {
        cache_dir: Some(cache.to_path_buf()),
        cache_backend: backend,
        ..ServerConfig::default()
    };
    Server::new(config).expect("server builds over the backend")
}

/// One observation: a request's payload plus its header `exit`.
fn observe(server: &Server, request: &str) -> (String, Option<i64>) {
    let reply = server.handle_line(request);
    let JsonNode::Obj(fields) = parse_json(&reply.header).expect("header parses") else {
        panic!("header not an object: {}", reply.header);
    };
    let exit = fields.iter().find(|(k, _)| k == "exit").and_then(|(_, v)| match v {
        JsonNode::Int(n) => Some(*n),
        _ => None,
    });
    (reply.payload, exit)
}

/// The `analysis` counter block of a `stats` reply, parsed — the whole
/// block must match across backends, tier accounting included.
fn analysis_counters(server: &Server) -> Vec<(String, JsonNode)> {
    let (stats, _) = observe(server, "{\"op\":\"stats\"}");
    let JsonNode::Obj(fields) = parse_json(stats.trim()).expect("stats parses") else {
        panic!("stats payload not an object");
    };
    let JsonNode::Obj(analysis) =
        fields.into_iter().find(|(k, _)| k == "analysis").expect("analysis block").1
    else {
        panic!("analysis is not an object");
    };
    analysis
}

fn int_counter(analysis: &[(String, JsonNode)], name: &str) -> i64 {
    match analysis.iter().find(|(k, _)| k == name) {
        Some((_, JsonNode::Int(n))) => *n,
        other => panic!("counter {name}: {other:?}"),
    }
}

/// The fixed request script both backends replay.
fn script(path_list: &str) -> Vec<(String, String)> {
    [
        ("analyze cold json", format!("{{\"op\":\"analyze\",\"paths\":{path_list}}}")),
        ("analyze warm json", format!("{{\"op\":\"analyze\",\"paths\":{path_list}}}")),
        (
            "analyze warm sarif",
            format!("{{\"op\":\"analyze\",\"paths\":{path_list},\"format\":\"sarif\"}}"),
        ),
        ("delta cold", format!("{{\"op\":\"delta\",\"paths\":{path_list}}}")),
        ("delta warm", format!("{{\"op\":\"delta\",\"paths\":{path_list}}}")),
    ]
    .into_iter()
    .map(|(label, request)| (label.to_owned(), request))
    .collect()
}

#[test]
fn dir_and_indexed_backends_are_observationally_identical() {
    let tree = TempTree::new("diff", 11, 60);
    let mut runs = Vec::new();
    for backend in [BackendKind::Dir, BackendKind::Indexed] {
        let cache = std::env::temp_dir()
            .join(format!("pnx-fleet-cache-{backend:?}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache);
        std::fs::create_dir_all(&cache).unwrap();

        let server = server_with(&cache, backend);
        let observations: Vec<(String, String, Option<i64>)> = script(&tree.path_list)
            .into_iter()
            .map(|(label, request)| {
                let (payload, exit) = observe(&server, &request);
                (label, payload, exit)
            })
            .collect();
        let counters = analysis_counters(&server);

        // A restart over the populated cache serves the whole tree from
        // disk: zero parses, every file a persistent hit.
        let restarted = server_with(&cache, backend);
        let (warm_payload, _) =
            observe(&restarted, &format!("{{\"op\":\"analyze\",\"paths\":{}}}", tree.path_list));
        let restart_counters = analysis_counters(&restarted);
        assert_eq!(
            int_counter(&restart_counters, "parses"),
            0,
            "{backend:?}: disk-warm restart must not parse"
        );
        assert_eq!(
            int_counter(&restart_counters, "persistent_hits"),
            tree.files as i64,
            "{backend:?}: every file must come from the persistent tier"
        );
        assert_eq!(warm_payload, observations[0].1, "{backend:?}: restart changed the envelope");

        runs.push((backend, observations, counters));
        let _ = std::fs::remove_dir_all(&cache);
    }

    let (_, dir_obs, dir_counters) = &runs[0];
    let (_, idx_obs, idx_counters) = &runs[1];
    for ((label, dir_payload, dir_exit), (_, idx_payload, idx_exit)) in
        dir_obs.iter().zip(idx_obs.iter())
    {
        assert_eq!(dir_payload, idx_payload, "{label}: envelopes differ between backends");
        assert_eq!(dir_exit, idx_exit, "{label}: exit codes differ between backends");
    }
    assert_eq!(
        dir_counters, idx_counters,
        "tier accounting differs between backends (hits/misses/stores must match)"
    );
    // Sanity: the invariant the torn-stats fix guarantees.
    assert_eq!(
        int_counter(dir_counters, "fingerprint_hits")
            + int_counter(dir_counters, "fingerprint_misses"),
        int_counter(dir_counters, "fingerprint_lookups"),
        "snapshot must never be torn"
    );
}

#[test]
fn indexed_backend_heals_after_a_kill_mid_compaction() {
    let tree = TempTree::new("heal", 23, 40);
    let cache = std::env::temp_dir().join(format!("pnx-fleet-heal-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    std::fs::create_dir_all(&cache).unwrap();

    // Populate the store, keep the reference envelope, drop the daemon.
    let reference = {
        let server = server_with(&cache, BackendKind::Indexed);
        let (payload, _) =
            observe(&server, &format!("{{\"op\":\"analyze\",\"paths\":{}}}", tree.path_list));
        payload
    };

    // Simulate dying mid-compaction: a half-written compaction temp
    // plus a torn record appended to the live store.
    let store = cache.join("cache.pnxi");
    assert!(store.exists(), "indexed backend writes cache.pnxi");
    std::fs::write(cache.join("cache.pnxi.compact.tmp"), b"half-written compaction").unwrap();
    {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new().append(true).open(&store).unwrap();
        file.write_all(b"PNXR\x01\x07\x03").unwrap(); // record header cut short
    }

    // A restarted daemon heals: stale temp discarded, torn tail
    // truncated, every pre-crash entry still served without a parse.
    let server = server_with(&cache, BackendKind::Indexed);
    assert!(
        !cache.join("cache.pnxi.compact.tmp").exists(),
        "stale compaction temp must be cleaned up on open"
    );
    let (payload, _) =
        observe(&server, &format!("{{\"op\":\"analyze\",\"paths\":{}}}", tree.path_list));
    assert_eq!(payload, reference, "healed store must serve the pre-crash envelope");
    let counters = analysis_counters(&server);
    assert_eq!(int_counter(&counters, "parses"), 0, "healed store serves without parsing");
    assert_eq!(int_counter(&counters, "persistent_hits"), tree.files as i64);
    assert_eq!(int_counter(&counters, "persistent_corrupt"), 0, "no entry may decode corrupt");

    let _ = std::fs::remove_dir_all(&cache);
}
