//! Offline stand-in for the `criterion` crate.
//!
//! A small wall-clock benchmarking harness with the API subset the
//! workspace's benches use: `Criterion` with builder configuration,
//! benchmark groups with throughput annotation, `bench_function` /
//! `bench_with_input`, plain and batched benchers, and the
//! `criterion_group!` / `criterion_main!` macros. Results are printed as
//! `name  time: <mean>/iter  thrpt: <rate>` lines.
//!
//! `--test` on the command line (as in `cargo bench -- --test`) switches
//! to smoke mode: every routine runs once and is reported as `ok`, which
//! is what CI uses to keep benches compiling and running without paying
//! for measurements. Any other non-flag argument is a substring filter on
//! benchmark ids.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted, not tuned, by this harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Work-rate annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            test_mode: false,
            filter: None,
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement duration.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Applies command-line arguments (`--test`, name filters).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.config.test_mode = true,
                "--bench" | "--quick" | "--noplot" => {}
                "--sample-size" | "--warm-up-time" | "--measurement-time" | "--profile-time" => {
                    let _ = args.next();
                }
                other if other.starts_with("--") => {}
                other => self.config.filter = Some(other.to_owned()),
            }
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size: None }
    }

    /// Benchmarks a single routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_benchmark(&self.config, &id.id, None, f);
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotates the per-iteration work rate.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Benchmarks one routine in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let mut config = self.criterion.config.clone();
        if let Some(n) = self.sample_size {
            config.sample_size = n;
        }
        run_benchmark(&config, &full, self.throughput, f);
    }

    /// Benchmarks one routine against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects timing for one benchmark routine.
pub struct Bencher {
    mode: BenchMode,
    /// Accumulated (elapsed, iterations) per sample.
    samples: Vec<(Duration, u64)>,
    iters_per_sample: u64,
}

enum BenchMode {
    /// Run once, record nothing (smoke mode).
    Test,
    /// Timed runs.
    Measure,
}

impl Bencher {
    /// Times a routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BenchMode::Test => {
                black_box(routine());
            }
            BenchMode::Measure => {
                let iters = self.iters_per_sample;
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                self.samples.push((start.elapsed(), iters));
            }
        }
    }

    /// Times a routine over per-iteration inputs built by `setup`
    /// (setup time is excluded).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        match self.mode {
            BenchMode::Test => {
                black_box(routine(setup()));
            }
            BenchMode::Measure => {
                let iters = self.iters_per_sample;
                let mut elapsed = Duration::ZERO;
                for _ in 0..iters {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(input));
                    elapsed += start.elapsed();
                }
                self.samples.push((elapsed, iters));
            }
        }
    }

    /// [`iter_batched`](Self::iter_batched) with the input passed by
    /// mutable reference.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        match self.mode {
            BenchMode::Test => {
                black_box(routine(&mut setup()));
            }
            BenchMode::Measure => {
                let iters = self.iters_per_sample;
                let mut elapsed = Duration::ZERO;
                for _ in 0..iters {
                    let mut input = setup();
                    let start = Instant::now();
                    black_box(routine(&mut input));
                    elapsed += start.elapsed();
                }
                self.samples.push((elapsed, iters));
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    config: &Config,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(filter) = &config.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    if config.test_mode {
        let mut b = Bencher { mode: BenchMode::Test, samples: Vec::new(), iters_per_sample: 1 };
        f(&mut b);
        println!("{id:<56} ... ok (test mode)");
        return;
    }

    // Warm-up: discover how many iterations fit one sample.
    let mut b = Bencher { mode: BenchMode::Measure, samples: Vec::new(), iters_per_sample: 1 };
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < config.warm_up_time {
        f(&mut b);
        warm_iters += b.samples.drain(..).map(|(_, n)| n).sum::<u64>().max(1);
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
    let budget = config.measurement_time.as_secs_f64() / config.sample_size as f64;
    b.iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    b.samples.clear();
    for _ in 0..config.sample_size {
        f(&mut b);
    }
    let (total, iters) =
        b.samples.iter().fold((Duration::ZERO, 0u64), |(d, n), &(sd, sn)| (d + sd, n + sn));
    let mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    let rate = |per_iter_units: u64| {
        let per_sec = per_iter_units as f64 / (mean_ns / 1e9);
        format_rate(per_sec)
    };
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => format!("  thrpt: {} elem/s", rate(n)),
        Some(Throughput::Bytes(n)) => format!("  thrpt: {} B/s", rate(n)),
        None => String::new(),
    };
    println!("{id:<56} time: {}/iter{thrpt}", format_time(mean_ns));
}

fn format_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn format_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2}G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2}K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compose() {
        assert_eq!(BenchmarkId::new("scan", 500).id, "scan/500");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn measurement_produces_samples() {
        let config = Config {
            sample_size: 3,
            warm_up_time: Duration::from_millis(5),
            measurement_time: Duration::from_millis(15),
            test_mode: false,
            filter: None,
        };
        let mut calls = 0u64;
        run_benchmark(&config, "unit/spin", Some(Throughput::Elements(10)), |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            });
        });
        assert!(calls > 0);
    }

    #[test]
    fn test_mode_runs_once_per_routine() {
        let config = Config { test_mode: true, ..Config::default() };
        let mut calls = 0u64;
        run_benchmark(&config, "unit/smoke", None, |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
        let mut batched = 0u64;
        run_benchmark(&config, "unit/batched", None, |b| {
            b.iter_batched(|| 1u64, |v| batched += v, BatchSize::SmallInput);
        });
        assert_eq!(batched, 1);
    }

    #[test]
    fn filters_skip_unmatched_ids() {
        let config = Config { test_mode: true, filter: Some("keep".into()), ..Config::default() };
        let mut ran = false;
        run_benchmark(&config, "skip/this", None, |b| b.iter(|| ran = true));
        assert!(!ran);
        run_benchmark(&config, "keep/this", None, |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn formatting_scales() {
        assert_eq!(format_time(12.0), "12.0 ns");
        assert_eq!(format_time(12_500.0), "12.50 µs");
        assert_eq!(format_time(2.5e6), "2.50 ms");
        assert_eq!(format_rate(2.5e6), "2.50M");
    }
}
