//! Offline stand-in for the `rand` crate.
//!
//! The workspace pins its randomness to seeded [`rngs::StdRng`] instances,
//! so all this crate has to provide is a deterministic, decently mixed
//! PRNG behind the same trait surface (`SeedableRng`, `Rng`, the range /
//! bool / plain-value sampling forms). The generator is SplitMix64 — tiny,
//! statistically fine for workload generation, and fully reproducible from
//! a `u64` seed. It is **not** the upstream StdRng stream: only
//! self-consistency across runs is promised, which is exactly what the
//! repo's determinism tests assert.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable "from the standard distribution" (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_one(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (the `StdRng` stand-in).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-1000i64..1_000_000);
            assert!((-1000..1_000_000).contains(&v));
            let w = rng.gen_range(1u32..=8);
            assert!((1..=8).contains(&w));
            let u = rng.gen_range(0usize..4);
            assert!(u < 4);
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.4)).count();
        assert!((3_500..4_500).contains(&hits), "p=0.4 gave {hits}/10000");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn full_width_values_appear() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen_high = false;
        for _ in 0..100 {
            if rng.gen::<u32>() > u32::MAX / 2 {
                seen_high = true;
            }
        }
        assert!(seen_high);
    }
}
