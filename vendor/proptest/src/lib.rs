//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`), range /
//! tuple / vector / boolean / regex-pattern strategies, `any::<T>()` over
//! a small [`Arbitrary`] universe, and `prop_assert!` /
//! `prop_assert_eq!`. Cases are generated from a deterministic per-test
//! RNG, so failures reproduce exactly; there is no shrinking — the first
//! failing case is reported as-is by the panic message.
//!
//! The number of cases per test defaults to 64 and can be raised with the
//! `PROPTEST_CASES` environment variable or pinned per block with
//! `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy, TestRng,
    };
}

/// Deterministic SplitMix64 generator driving every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator for one `(test, case)` pair.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical full-range strategy (`any::<T>()` and the
/// `name: Type` parameter form of [`proptest!`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy behind `any::<T>()`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Full-range strategy for an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Regex-subset string strategy: literals, `[a-z_]` classes, `\PC`
/// (printable), with `{m,n}` / `{n}` / `*` / `+` / `?` quantifiers.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        pattern::sample(self, rng)
    }
}

mod pattern {
    use super::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
        Printable,
    }

    fn printable(rng: &mut TestRng) -> char {
        // Mostly ASCII printable, with the occasional non-ASCII scalar to
        // keep "never panics" tests honest about multi-byte input.
        const EXOTIC: [char; 8] = ['é', 'ß', '中', '✓', '🦀', '\u{00a0}', 'Ω', 'ñ'];
        if rng.below(8) == 0 {
            EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
        } else {
            char::from(0x20 + rng.below(0x5f) as u8)
        }
    }

    pub fn sample(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '\\' => {
                    i += 1;
                    match chars.get(i) {
                        Some('P') | Some('p') => {
                            i += 2; // skip the category letter
                            Atom::Printable
                        }
                        Some(&c) => {
                            i += 1;
                            Atom::Literal(c)
                        }
                        None => break,
                    }
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if chars.get(i + 1) == Some(&'-')
                            && chars.get(i + 2).is_some_and(|&c| c != ']')
                        {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    i += 1; // ']'
                    Atom::Class(ranges)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..].iter().position(|&c| c == '}').map(|p| i + p);
                    let Some(close) = close else { break };
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((a, b)) => {
                            (a.trim().parse().unwrap_or(0), b.trim().parse().unwrap_or(1))
                        }
                        None => {
                            let n = body.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0u64, 8u64)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            let n = lo + rng.below(hi - lo + 1);
            for _ in 0..n {
                match &atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Printable => out.push(printable(rng)),
                    Atom::Class(ranges) => {
                        if ranges.is_empty() {
                            continue;
                        }
                        let (a, b) = ranges[rng.below(ranges.len() as u64) as usize];
                        let span = b as u32 - a as u32 + 1;
                        let v = a as u32 + rng.below(u64::from(span)) as u32;
                        out.push(char::from_u32(v).unwrap_or(a));
                    }
                }
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + rng.below(span as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// The strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    /// Uniform `true` / `false`.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count, honouring the `PROPTEST_CASES` override.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
            .max(1)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(x in strategy, y: Type) { .. }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each test function in a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..u64::from(__config.resolved_cases()) {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $crate::__proptest_bind!(__rng; $($params)*);
                $body
            }
        }
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
}

/// Internal: binds one [`proptest!`] parameter list entry at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $v:ident : $t:ty $(, $($rest:tt)*)?) => {
        let $v = <$t as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($($rest)*)?);
    };
    ($rng:ident; $v:ident in $s:expr $(, $($rest:tt)*)?) => {
        let $v = $crate::Strategy::sample(&($s), &mut $rng);
        $crate::__proptest_bind!($rng; $($($rest)*)?);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_types_bind(x in 0u32..10, y: u8, flag in crate::bool::ANY) {
            prop_assert!(x < 10);
            let _ = (y, flag);
        }

        #[test]
        fn vectors_respect_length_bounds(v in crate::collection::vec(0u8..5, 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn tuples_sample_elementwise(pair in (0u8..3, 1u32..128)) {
            prop_assert!(pair.0 < 3);
            prop_assert!((1..128).contains(&pair.1));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_blocks_parse(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn identifier_patterns_generate_identifiers() {
        for case in 0..50 {
            let mut rng = TestRng::for_case("idents", case);
            let s = Strategy::sample(&"[A-Za-z][A-Za-z0-9_]{0,20}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 21, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn printable_patterns_bound_length() {
        let mut rng = TestRng::for_case("printable", 0);
        let s = Strategy::sample(&"\\PC{0,200}", &mut rng);
        assert!(s.chars().count() <= 200);
    }

    #[test]
    fn deterministic_per_case() {
        let a = Strategy::sample(&(0u64..u64::MAX), &mut TestRng::for_case("t", 3));
        let b = Strategy::sample(&(0u64..u64::MAX), &mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }
}
