//! The §7 static-analysis tool against the corpus — and the §1 coverage
//! claim against a traditional baseline.
//!
//! Runs the placement-new [`Analyzer`] and the classic-overflow
//! [`BaselineChecker`] over every vulnerable listing and every benign
//! program, printing a per-program verdict table plus the aggregate
//! detection/false-positive rates (experiment E21).
//!
//! Run with: `cargo run --example static_audit`

use placement_new_attacks::corpus::{benign, listings};
use placement_new_attacks::detector::{Analyzer, BaselineChecker, Severity};

fn main() {
    let analyzer = Analyzer::new();
    let baseline = BaselineChecker::new();

    println!("=== vulnerable corpus (the paper's listings) ===");
    println!("{:<34} {:>9} {:>9}  strongest finding", "program", "analyzer", "baseline");
    println!("{}", "-".repeat(84));
    let vulnerable = listings::vulnerable_corpus();
    let mut ours = 0usize;
    let mut theirs = 0usize;
    for prog in &vulnerable {
        let a = analyzer.analyze(prog);
        let b = baseline.analyze(prog);
        ours += usize::from(a.detected());
        theirs += usize::from(b.detected());
        let strongest = a
            .findings
            .iter()
            .max_by_key(|f| f.severity)
            .map_or("-".to_owned(), |f| format!("{} [{}]", f.severity, f.kind));
        println!(
            "{:<34} {:>9} {:>9}  {}",
            prog.name,
            if a.detected() { "FLAGGED" } else { "miss" },
            if b.detected() { "FLAGGED" } else { "miss" },
            strongest
        );
    }

    println!("\n=== benign corpus (§5.1-correct programs) ===");
    let benign = benign::benign_corpus();
    let mut fp = 0usize;
    for prog in &benign {
        let a = analyzer.analyze(prog);
        if a.detected_at(Severity::Warning) {
            fp += 1;
            println!("{:<34} FALSE POSITIVE: {a}", prog.name);
        }
    }
    if fp == 0 {
        println!("all {} benign programs pass without warnings", benign.len());
    }

    println!("\n=== E21 summary ===");
    println!(
        "placement-new analyzer: {ours}/{} listings detected, {fp}/{} benign false positives",
        vulnerable.len(),
        benign.len()
    );
    println!(
        "traditional baseline:   {theirs}/{} listings detected — the paper's coverage gap",
        vulnerable.len()
    );
    assert_eq!(ours, vulnerable.len());
    assert_eq!(theirs, 0);
    assert_eq!(fp, 0);
}
