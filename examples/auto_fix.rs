//! Automatic remediation (§7) over the paper's listings.
//!
//! Runs the analyzer on every vulnerable listing, applies the [`Fixer`]'s
//! §5.1-prescribed rewrites (heap fallback, missing bounds checks,
//! sanitizing memsets, placement deletes), and re-analyzes to show the
//! findings drop to zero — the paper's "automatically addressing these
//! vulnerabilities", end to end.
//!
//! Run with: `cargo run --example auto_fix`

use placement_new_attacks::corpus::listings;
use placement_new_attacks::detector::{Analyzer, Fixer, Severity};

fn main() {
    let analyzer = Analyzer::new();
    let fixer = Fixer::new();
    let mut total_fixes = 0usize;

    println!(
        "{:<34} {:>8} {:>6} {:>9}  first fix applied",
        "listing", "findings", "fixes", "residual"
    );
    println!("{}", "-".repeat(100));
    for prog in listings::vulnerable_corpus() {
        let before = analyzer
            .analyze(&prog)
            .findings
            .iter()
            .filter(|f| f.severity >= Severity::Warning)
            .count();
        let (fixed, fixes) = fixer.fix(&prog);
        let after = analyzer
            .analyze(&fixed)
            .findings
            .iter()
            .filter(|f| f.severity >= Severity::Warning)
            .count();
        total_fixes += fixes.len();
        println!(
            "{:<34} {:>8} {:>6} {:>9}  {}",
            prog.name,
            before,
            fixes.len(),
            after,
            fixes.first().map_or(String::from("-"), |f| f.description.clone())
        );
        assert_eq!(after, 0, "{}: fixer left residual findings", prog.name);
    }
    println!("{}", "-".repeat(100));
    println!("{total_fixes} automatic fixes applied; 0 warning-level findings remain anywhere");

    // Show one rewrite in detail: Listing 23's leaky release.
    let leak = listings::listing_23();
    let (_, fixes) = fixer.fix(&leak);
    println!("\nListing 23 in detail:");
    for f in fixes {
        println!("  {f}");
    }
}
