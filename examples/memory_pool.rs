//! Placement new used *correctly* — the §2.1 use cases, defended.
//!
//! The paper is explicit that placement new is "a powerful expression
//! [that] supports important functionalities": memory pools for
//! mission-critical systems, avoiding allocation failures, memory reuse,
//! and deserialization into pre-allocated arenas. This example builds a
//! small request-processing service on a fixed memory pool using the §5.1
//! APIs — checked placement, sanitized reuse, placement delete — and
//! shows that the legitimate patterns work while every abuse is refused.
//!
//! Run with: `cargo run --example memory_pool`

use placement_new_attacks::core::protect::{checked_placement_new, Arena, ManagedArena};
use placement_new_attacks::core::student::StudentWorld;
use placement_new_attacks::core::{AttackConfig, PlacementError, PlacementMode};
use placement_new_attacks::corpus::workload;
use placement_new_attacks::memory::SegmentKind;
use placement_new_attacks::object::CxxType;
use placement_new_attacks::runtime::VarDecl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = StudentWorld::plain();
    let mut m = world.machine(&AttackConfig::paper());

    // §2.1(3): "build a custom-made memory pool for the application,
    // which would act as a heap ... Mission-critical systems rely on
    // memory pools and reuse of memory in order to avoid allocation
    // failures."
    let slot_size = m.size_of(world.grad)?; // big enough for either class
    let slots = 8u32;
    let pool = m.define_global(
        "request_pool",
        VarDecl::Buffer { size: slot_size * slots, align: 8 },
        SegmentKind::Bss,
    )?;
    println!("fixed pool: {slots} slots x {slot_size} bytes at {pool} — zero heap traffic");

    // Process a student population through the pool: every placement is
    // checked, every slot sanitized between tenants.
    let students = workload::student_population(42, 32);
    let mut arenas: Vec<ManagedArena> =
        (0..slots).map(|i| ManagedArena::new(pool + i * slot_size, slot_size, true)).collect();

    let mut processed = 0usize;
    for (i, record) in students.iter().enumerate() {
        let arena = &mut arenas[i % slots as usize];
        let class = if record.grad { world.grad } else { world.student };
        let obj = arena
            .place_object(&mut m, PlacementMode::Checked, class)
            .map_err(|e| format!("pool placement unexpectedly refused: {e}"))?;
        obj.write_f64(&mut m, "gpa", record.gpa)?;
        obj.write_i32(&mut m, "year", record.year)?;
        if record.grad {
            for (k, v) in record.ssn.iter().enumerate() {
                obj.write_elem_i32(&mut m, "ssn", k as u32, *v)?;
            }
        }
        processed += 1;
    }
    println!("processed {processed} records through {slots} reusable slots");
    println!("heap allocations: {}", m.heap_stats().total_allocs);
    assert_eq!(m.heap_stats().total_allocs, 0);

    // Sanitized reuse means no SSN residue survives slot turnover.
    let first_slot = arenas[0].arena();
    arenas[0].place_object(&mut m, PlacementMode::Checked, world.student)?;
    let student_size = m.size_of(world.student)?;
    let residue = m.space().read_i32(first_slot.addr + student_size)?;
    println!("slot 0 residue past sizeof(Student): {residue} (sanitized)");
    assert_eq!(residue, 0);

    // And the abuse paths are refused, not silently corrupted:
    println!("\nabuse attempts against the same pool:");
    let tiny = Arena::new(first_slot.addr, student_size);
    match checked_placement_new(&mut m, tiny, world.grad) {
        Err(PlacementError::SizeExceedsArena { placed, arena }) => {
            println!("  oversized object:   refused ({placed} > {arena} bytes)");
        }
        other => panic!("expected refusal, got {other:?}"),
    }
    match PlacementMode::Checked.place_array(
        &mut m,
        Arena::new(pool, slot_size * slots),
        CxxType::Char,
        slot_size * slots + 1,
    ) {
        Err(PlacementError::SizeExceedsArena { .. }) => {
            println!("  oversized array:    refused");
        }
        other => panic!("expected refusal, got {other:?}"),
    }
    match checked_placement_new(&mut m, Arena::new(pool + 1, 64), world.student) {
        Err(PlacementError::Misaligned { required, .. }) => {
            println!("  misaligned arena:   refused (needs {required}-byte alignment)");
        }
        other => panic!("expected refusal, got {other:?}"),
    }

    println!("\nthe §2.1 functionality survives the §5.1 discipline intact");
    Ok(())
}
