//! The E24 story in one run: ASLR stops the paper's control-flow attacks —
//! until the paper's own information leak hands the layout back.
//!
//! Run with: `cargo run --example aslr_bypass`

use placement_new_attacks::core::attacks::aslr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const TRIALS: u32 = 50;

    println!(
        "{:<34} {:>7} {:>8} {:>8} {:>13}",
        "attack", "trials", "hijacks", "crashes", "success rate"
    );
    println!("{}", "-".repeat(76));

    let fixed = aslr::control_flow_trials(TRIALS, false)?;
    println!(
        "{:<34} {:>7} {:>8} {:>8} {:>12.0}%",
        "selective overwrite (fixed layout)",
        fixed.trials,
        fixed.successes,
        fixed.crashes,
        fixed.success_rate() * 100.0
    );

    let blind = aslr::control_flow_trials(TRIALS, true)?;
    println!(
        "{:<34} {:>7} {:>8} {:>8} {:>12.0}%",
        "selective overwrite (ASLR)",
        blind.trials,
        blind.successes,
        blind.crashes,
        blind.success_rate() * 100.0
    );

    let assisted = aslr::leak_assisted_trials(TRIALS)?;
    println!(
        "{:<34} {:>7} {:>8} {:>8} {:>12.0}%",
        "leak-assisted overwrite (ASLR)",
        assisted.trials,
        assisted.successes,
        assisted.crashes,
        assisted.success_rate() * 100.0
    );

    let data = aslr::data_only_trials(TRIALS, true)?;
    println!(
        "{:<34} {:>7} {:>8} {:>8} {:>12.0}%",
        "data-only counter forgery (ASLR)",
        data.trials,
        data.successes,
        data.crashes,
        data.success_rate() * 100.0
    );

    println!();
    println!("ASLR breaks the hardcoded &system; the §4.3 leak of one code pointer");
    println!("(plus the binary-relative distance between functions) rebuilds it;");
    println!("the data-only attacks never cared about addresses at all.");

    assert_eq!(fixed.successes, TRIALS);
    assert_eq!(blind.successes, 0);
    assert_eq!(assisted.successes, TRIALS);
    assert_eq!(data.successes, TRIALS);
    Ok(())
}
