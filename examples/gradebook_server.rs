//! A gradebook "web service" receiving serialized student objects.
//!
//! §3.2 of the paper motivates placement-new overflows with object-based
//! information transfer: servers deserialize objects from untrusted
//! clients and "place" them into pre-allocated arenas. This example builds
//! that server on the simulated machine:
//!
//! 1. an honest client sends a well-formed `Student` record — served fine;
//! 2. a malicious client sends a **forged wire object** whose payload is
//!    larger than the arena — the deep-copying placement overruns into the
//!    adjacent session data (the admin flag!);
//! 3. the same request against a §5.1-hardened server (checked placement
//!    with heap fallback) is contained.
//!
//! Run with: `cargo run --example gradebook_server`

use placement_new_attacks::core::protect::{checked_placement_new, Arena};
use placement_new_attacks::core::student::StudentWorld;
use placement_new_attacks::core::{placement_new_copy, AttackConfig, PlacementError};
use placement_new_attacks::memory::SegmentKind;
use placement_new_attacks::object::wire::WireObject;
use placement_new_attacks::runtime::{Machine, VarDecl};

/// Server-side session state: one pre-allocated Student arena and the
/// authorization flag that happens to live right after it.
struct Server {
    machine: Machine,
    world: StudentWorld,
    arena: placement_new_attacks::memory::VirtAddr,
    is_admin: placement_new_attacks::memory::VirtAddr,
    hardened: bool,
}

impl Server {
    fn new(hardened: bool) -> Result<Self, Box<dyn std::error::Error>> {
        let world = StudentWorld::plain();
        let mut machine = world.machine(&AttackConfig::paper());
        let arena = machine.define_global(
            "session_student",
            VarDecl::Class(world.student),
            SegmentKind::Bss,
        )?;
        let is_admin = machine.define_global(
            "session_is_admin",
            VarDecl::Ty(placement_new_attacks::object::CxxType::Int),
            SegmentKind::Bss,
        )?;
        machine.space_mut().write_i32(is_admin, 0)?;
        Ok(Server { machine, world, arena, is_admin, hardened })
    }

    /// Handles one serialized-object request, returning a status line.
    fn handle(&mut self, wire: &[u8]) -> Result<String, Box<dyn std::error::Error>> {
        let obj = WireObject::decode(wire)?;
        if self.hardened {
            // §5.1: check the *actual* payload size against the arena
            // before placing; refuse (fall back) otherwise.
            let arena = Arena::new(self.arena, self.machine.size_of(self.world.student)?);
            if obj.payload().len() as u32 > arena.size {
                return Ok(format!(
                    "rejected: payload of {} bytes exceeds the {}-byte session arena",
                    obj.payload().len(),
                    arena.size
                ));
            }
            match checked_placement_new(&mut self.machine, arena, self.world.student) {
                Ok(slot) => {
                    self.machine.space_mut().write_bytes(slot.addr(), obj.payload())?;
                }
                Err(PlacementError::Runtime(e)) => return Err(e.into()),
                Err(refused) => return Ok(format!("rejected: {refused}")),
            }
        } else {
            // The vulnerable server trusts the protocol (§3.2) and deep-
            // copies whatever arrived.
            placement_new_copy(&mut self.machine, self.arena, self.world.student, obj.payload())?;
        }
        Ok(format!("accepted {} ({} payload bytes)", obj.class_name(), obj.payload().len()))
    }

    fn admin_flag(&self) -> i32 {
        self.machine.space().read_i32(self.is_admin).unwrap_or(-1)
    }
}

/// An honest 16-byte Student record.
fn honest_request() -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&3.7f64.to_le_bytes()); // gpa
    payload.extend_from_slice(&2009i32.to_le_bytes()); // year
    payload.extend_from_slice(&1i32.to_le_bytes()); // semester
    WireObject::new("Student", payload).encode()
}

/// A forged record: valid-looking fields followed by 4 extra bytes that
/// land exactly on `session_is_admin`.
fn malicious_request() -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&4.0f64.to_le_bytes());
    payload.extend_from_slice(&2009i32.to_le_bytes());
    payload.extend_from_slice(&1i32.to_le_bytes());
    payload.extend_from_slice(&1i32.to_le_bytes()); // spills onto is_admin
    WireObject::new("Student", payload).encode()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== vulnerable server (trusts the protocol, §3.2) ===");
    let mut server = Server::new(false)?;
    println!("honest client:    {}", server.handle(&honest_request())?);
    println!("  is_admin = {}", server.admin_flag());
    println!("malicious client: {}", server.handle(&malicious_request())?);
    println!("  is_admin = {}   <- privilege escalated by 4 spilled bytes", server.admin_flag());
    assert_eq!(server.admin_flag(), 1);

    println!("\n=== hardened server (checked placement, §5.1) ===");
    let mut server = Server::new(true)?;
    println!("honest client:    {}", server.handle(&honest_request())?);
    println!("malicious client: {}", server.handle(&malicious_request())?);
    println!("  is_admin = {}   <- contained", server.admin_flag());
    assert_eq!(server.admin_flag(), 0);
    Ok(())
}
