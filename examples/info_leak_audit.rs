//! Information leakage through unsanitized arena reuse (§4.3).
//!
//! Replays both leak listings with and without the §5.1 memset defense,
//! and prints what the attacker actually recovers:
//!
//! * Listing 21 — a password file is read into `mem_pool`; a short user
//!   string is then placed over the pool; everything past the string ships
//!   out with it;
//! * Listing 22 — a `GradStudent`'s SSN survives a smaller `Student` being
//!   placed over it.
//!
//! Run with: `cargo run --example info_leak_audit`

use placement_new_attacks::core::attacks::info_leak;
use placement_new_attacks::core::{AttackConfig, Defense};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Listing 21: array reuse over the password file ===");
    for (label, cfg) in [
        ("vulnerable", AttackConfig::paper()),
        ("sanitized (§5.1)", AttackConfig::with_defense(Defense::correct_coding())),
    ] {
        let report = info_leak::run_array(&cfg)?;
        println!("\n[{label}] {}", report.verdict());
        println!(
            "  recoverable secret bytes: {} / {}",
            report.measurement("leaked_bytes").unwrap_or(0.0),
            report.measurement("secret_bytes").unwrap_or(0.0)
        );
        for line in &report.evidence {
            println!("  {line}");
        }
    }

    println!("\n=== Listing 22: SSN residue after object reuse ===");
    for (label, cfg) in [
        ("vulnerable", AttackConfig::paper()),
        ("sanitized (§5.1)", AttackConfig::with_defense(Defense::correct_coding())),
    ] {
        let report = info_leak::run_object(&cfg)?;
        println!("\n[{label}] {}", report.verdict());
        println!(
            "  SSN words recovered: {}",
            report.measurement("ssn_words_leaked").unwrap_or(0.0)
        );
        for line in &report.evidence {
            println!("  {line}");
        }
    }
    Ok(())
}
