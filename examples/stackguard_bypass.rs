//! The paper's StackGuard experiment (§3.6.1 / §5.2).
//!
//! Replays Listing 13 under every stack-protection configuration, with
//! both attacker strategies:
//!
//! * **naive smash** — three positive `ssn` values overwrite everything
//!   above the object, so StackGuard's canary check fires;
//! * **selective overwrite** — non-positive values make the victim's own
//!   `if (dssn > 0)` guard skip the canary and saved-FP words, and only
//!   the return address changes: "We succeeded, and StackGuard could not
//!   detect it."
//!
//! Also shows the §5.2 remedy: a return-address (shadow) stack catches
//! what the canary cannot.
//!
//! Run with: `cargo run --example stackguard_bypass`

use placement_new_attacks::core::attacks::stack_smash;
use placement_new_attacks::core::AttackConfig;
use placement_new_attacks::runtime::StackProtection;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{:<18} {:<11} {:>14} outcome", "protection", "strategy", "canary intact");
    println!("{}", "-".repeat(76));

    for protection in
        [StackProtection::None, StackProtection::FramePointer, StackProtection::StackGuard]
    {
        for (strategy, run) in [
            ("naive", stack_smash::run_naive as fn(&AttackConfig) -> _),
            ("selective", stack_smash::run_selective),
        ] {
            let cfg = AttackConfig::with_protection(protection);
            let report = run(&cfg)?;
            let canary = report.measurement("canary_intact").map_or_else(
                || "n/a".to_owned(),
                |v| {
                    if v.is_nan() {
                        "n/a".to_owned()
                    } else {
                        (v == 1.0).to_string()
                    }
                },
            );
            println!(
                "{:<18} {:<11} {:>14} {}",
                protection.to_string(),
                strategy,
                canary,
                report.verdict()
            );
        }
    }

    // The other classic bypass: leak the canary from stale stack memory
    // (§4.3 on the stack), then write it back over itself.
    let replay = stack_smash::run_canary_replay(&AttackConfig::paper())?;
    println!(
        "{:<18} {:<11} {:>14} {}",
        "stackguard",
        "replay",
        replay.measurement("canary_intact").map(|v| v == 1.0).unwrap_or(false).to_string(),
        replay.verdict()
    );
    assert!(replay.succeeded);

    // The remedy: the same selective overwrite against a shadow stack.
    let mut cfg = AttackConfig::paper();
    cfg.shadow_stack = true;
    let report = stack_smash::run_selective(&cfg)?;
    println!("{}", "-".repeat(76));
    println!("{:<18} {:<11} {:>14} {}", "shadow stack", "selective", "true", report.verdict());
    assert!(!report.succeeded);

    println!("\nEvidence from the selective run under StackGuard:");
    let report = stack_smash::run_selective(&AttackConfig::paper())?;
    for line in &report.evidence {
        println!("  {line}");
    }
    Ok(())
}
