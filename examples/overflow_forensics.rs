//! Byte-level forensics of a placement-new overflow.
//!
//! Snapshots the bss region around the Listing 11 victims, mounts the
//! overflow, and then shows — as a hexdump and a byte diff — exactly
//! which memory the attack touched, correlated with the machine's write
//! trace. This is the "with microscope and tweezers" view (the paper's
//! §6 nods to Rochlis & Eichin) of the flagship attack.
//!
//! Run with: `cargo run --example overflow_forensics`

use placement_new_attacks::core::student::StudentWorld;
use placement_new_attacks::core::{placement_new, AttackConfig};
use placement_new_attacks::memory::dump::{hexdump, Snapshot};
use placement_new_attacks::memory::SegmentKind;
use placement_new_attacks::runtime::VarDecl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = StudentWorld::plain();
    let mut m = world.machine(&AttackConfig::paper());

    let stud1 = m.define_global("stud1", VarDecl::Class(world.student), SegmentKind::Bss)?;
    let stud2 = m.define_global("stud2", VarDecl::Class(world.student), SegmentKind::Bss)?;

    // Benign state: stud2 holds an honest record.
    let st2 = placement_new(&mut m, stud2, world.student)?;
    st2.write_f64(&mut m, "gpa", 3.5)?;
    st2.write_i32(&mut m, "year", 2008)?;
    st2.write_i32(&mut m, "semester", 2)?;

    println!("=== bss before the attack ===");
    print!("{}", hexdump(m.space(), stud1, 32)?);

    // Capture evidence baselines.
    let snapshot = Snapshot::capture(m.space(), stud1, 32)?;
    m.space_mut().trace_mut().clear();

    // The attack: GradStudent placed at stud1, SSN "set" by the attacker.
    let st1 = placement_new(&mut m, stud1, world.grad)?;
    let forged = 4.0f64.to_bits();
    st1.write_elem_i32(&mut m, "ssn", 0, (forged & 0xffff_ffff) as i32)?;
    st1.write_elem_i32(&mut m, "ssn", 1, (forged >> 32) as i32)?;
    st1.write_elem_i32(&mut m, "ssn", 2, 2025)?;

    println!("\n=== bss after the attack ===");
    print!("{}", hexdump(m.space(), stud1, 32)?);

    println!("\n=== byte diff (changed runs) ===");
    let diffs = snapshot.diff(m.space())?;
    for d in &diffs {
        let victim = if d.addr >= stud2 { "inside stud2!" } else { "inside stud1" };
        println!("  {d}   <- {victim}");
    }
    assert!(diffs.iter().any(|d| d.addr >= stud2), "the overflow must cross into stud2");

    println!("\n=== machine write trace (who wrote those bytes) ===");
    for w in m.space().trace().iter() {
        let where_ = if w.overlaps(stud2, 16) { " -> lands in stud2" } else { "" };
        println!("  {w}{where_}");
    }

    println!("\nstud2.gpa is now {}", st2.read_f64(&mut m, "gpa")?);
    Ok(())
}
