//! Quickstart: the paper's flagship demonstration, end to end.
//!
//! Builds the simulated ILP32 machine, defines the running-example class
//! pair (`Student` / `GradStudent`), and replays Listing 11: placing a
//! `GradStudent` at `&stud1` and watching its `ssn[]` writes land inside
//! the adjacent `stud2`.
//!
//! Run with: `cargo run --example quickstart`

use placement_new_attacks::core::student::StudentWorld;
use placement_new_attacks::core::{placement_new, AttackConfig};
use placement_new_attacks::memory::SegmentKind;
use placement_new_attacks::runtime::VarDecl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's platform: ILP32, gcc-style layout, StackGuard on.
    let world = StudentWorld::plain();
    let mut machine = world.machine(&AttackConfig::paper());

    println!("=== the memory image ===");
    print!("{}", machine.space());

    // Student stud1, stud2;  — adjacent uninitialized globals (bss).
    let stud1 = machine.define_global("stud1", VarDecl::Class(world.student), SegmentKind::Bss)?;
    let stud2 = machine.define_global("stud2", VarDecl::Class(world.student), SegmentKind::Bss)?;
    println!("\nstud1 at {stud1}");
    println!("stud2 at {stud2}  (exactly sizeof(Student) = 16 bytes above)");

    // The layouts the overflow arithmetic rides on.
    println!("\n=== layouts (computed, gcc-style) ===");
    println!("{}", machine.layout(world.student)?);
    println!("{}", machine.layout(world.grad)?);

    // A benign Student in stud2.
    let st2 = placement_new(&mut machine, stud2, world.student)?;
    st2.write_f64(&mut machine, "gpa", 3.5)?;
    st2.write_i32(&mut machine, "year", 2008)?;
    println!("stud2.gpa before the attack: {}", st2.read_f64(&mut machine, "gpa")?);

    // The vulnerable placement: GradStudent (32 bytes) into stud1's
    // 16-byte arena. No check fires — that is the paper's point.
    let st1 = placement_new(&mut machine, stud1, world.grad)?;

    // The attacker "sets the SSN": ssn[0..2] live at stud1+16..28, i.e.
    // right on top of stud2.gpa and stud2.year.
    let forged = 4.0f64.to_bits();
    st1.write_elem_i32(&mut machine, "ssn", 0, (forged & 0xffff_ffff) as i32)?;
    st1.write_elem_i32(&mut machine, "ssn", 1, (forged >> 32) as i32)?;
    st1.write_elem_i32(&mut machine, "ssn", 2, 2025)?;

    println!("\n=== after st1->setSSN(attacker values) ===");
    println!("stud2.gpa  = {}   <- forged to a perfect 4.0", st2.read_f64(&mut machine, "gpa")?);
    println!("stud2.year = {}  <- forged", st2.read_i32(&mut machine, "year")?);

    // The write trace shows who really wrote those bytes.
    println!("\n=== write trace hits on stud2 ===");
    for w in machine.space().trace().writes_to(stud2, 16) {
        println!("  {w}");
    }
    Ok(())
}
