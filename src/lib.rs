//! # placement-new-attacks
//!
//! A from-scratch reproduction of *"A New Class of Buffer Overflow
//! Attacks"* (Ashish Kundu & Elisa Bertino, ICDCS 2011) as a Rust
//! workspace: the paper demonstrates that the C++ `placement new`
//! expression — `new (addr) T()` — performs no bounds, type, or alignment
//! checking, and builds a full catalogue of overflow attacks on it.
//!
//! Because safe Rust cannot (and should not) express the raw memory
//! corruption involved, the reproduction runs on a deterministic
//! **simulated C++ runtime** that models exactly what the attacks depend
//! on: the ILP32 process image, gcc-style object layout with vtable
//! pointers, stack frames with StackGuard canaries, and a header-based
//! heap allocator. See `DESIGN.md` for the substitution argument and
//! `EXPERIMENTS.md` for the per-listing reproduction results.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`memory`] — simulated address space (segments, permissions, traces);
//! * [`object`] — C++ object model: classes, layout, vtables, wire format;
//! * [`runtime`] — the machine: frames, canaries, heap, dispatch;
//! * [`core`] — placement new, the attack suite, and the §5 protections;
//! * [`detector`] — the §7 static-analysis tool and the traditional-tool
//!   baseline;
//! * [`corpus`] — the paper's listings (runnable and analyzable) plus
//!   benign programs and workload generators.
//!
//! # Quickstart
//!
//! ```
//! use placement_new_attacks::core::attacks::bss_overflow;
//! use placement_new_attacks::core::AttackConfig;
//!
//! // Listing 11: the bss object overflow, exactly as published.
//! let report = bss_overflow::run(&AttackConfig::paper()).unwrap();
//! assert!(report.succeeded);
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pnew_core as core;
pub use pnew_corpus as corpus;
pub use pnew_detector as detector;
pub use pnew_memory as memory;
pub use pnew_object as object;
pub use pnew_runtime as runtime;
