//! `xcheck` — the analyzer/executor differential over files and seeded
//! corpora.
//!
//! ```text
//! usage: xcheck [--seed N] [--count N] [--guarded] [--max-fp N] [--json] [PATH...]
//!
//!   PATH may be a .pnx file or a directory (scanned recursively for
//!   *.pnx). When no PATH is given, or in addition to the given paths,
//!   xcheck runs the differential over the seeded executable corpus:
//!
//!   --seed N     corpus seed (default 1)
//!   --count N    corpus size (default 200; 0 disables the corpus pass)
//!   --guarded    use the guarded corpus (workload::guarded_corpus) and
//!                each case's own probe scripts — the analyzer-precision
//!                measurement, where every Warning on a runtime-safe
//!                guard shape is a false positive
//!   --max-fp N   exit 1 when the matrix counts more than N false
//!                positives (default: unlimited — FPs are reported but
//!                only false negatives fail the run)
//!   --json       emit the pncheck-oracle/1 JSON envelope instead of
//!                the text matrix
//! ```
//!
//! Every program is analyzed statically and executed concretely under
//! the seeded attacker scripts from `workload::attack_inputs` (plus the
//! per-case probes in `--guarded` mode); the per-site verdicts aggregate
//! into one TP/FP/FN matrix. Exit status: 0 when analyzer and machine
//! agree (zero false negatives, and at most `--max-fp` false positives),
//! 1 on any false negative or an exceeded FP budget, 2 on usage or
//! read/parse errors.

use std::process::ExitCode;

use pnew_corpus::workload;
use pnew_detector::cliopts;
use pnew_detector::emit::{render_oracle_json, OracleRecord};
use pnew_detector::oracle::{Matrix, Oracle};
use pnew_detector::parse_program_recovering;

const USAGE: &str =
    "usage: xcheck [--seed N] [--count N] [--guarded] [--max-fp N] [--json] [PATH...]";

fn main() -> ExitCode {
    let mut seed = 1u64;
    let mut count = 200usize;
    let mut json = false;
    let mut guarded = false;
    let mut max_fp: Option<u64> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("xcheck: --seed needs an integer");
                    return ExitCode::from(2);
                }
            },
            "--count" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => count = v,
                None => {
                    eprintln!("xcheck: --count needs an integer");
                    return ExitCode::from(2);
                }
            },
            "--max-fp" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_fp = Some(v),
                None => {
                    eprintln!("xcheck: --max-fp needs an integer");
                    return ExitCode::from(2);
                }
            },
            "--guarded" => guarded = true,
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("xcheck: unknown flag {other}\n{USAGE}");
                return ExitCode::from(2);
            }
            _ => inputs.push(arg),
        }
    }

    let mut had_errors = false;
    let (paths, expand_errors) = cliopts::expand_inputs(&inputs);
    for e in expand_errors {
        eprintln!("xcheck: {e}");
        had_errors = true;
    }

    let oracle = Oracle::new();
    let scripts: Vec<Vec<i64>> =
        Oracle::default_inputs().into_iter().chain(workload::attack_inputs(seed, 4)).collect();
    let mut matrix = Matrix::new();
    let mut records: Vec<OracleRecord> = Vec::new();

    for path in &paths {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xcheck: {path}: {e}");
                had_errors = true;
                continue;
            }
        };
        let program = match parse_program_recovering(&source) {
            Ok(p) => p,
            Err(errors) => {
                for e in &errors {
                    eprintln!("xcheck: {path}: {e}");
                }
                had_errors = true;
                continue;
            }
        };
        let report = oracle.differential_with(&program, &scripts);
        matrix.absorb(&report);
        records.push(OracleRecord { path: path.clone(), report });
    }

    if count > 0 {
        if guarded {
            for (i, case) in workload::guarded_corpus(seed, count).iter().enumerate() {
                // Each case ships its own probe scripts: loose guards sit
                // below attack_inputs' hostile range, and clamp loops must
                // stay within the executor's iteration budget, so the
                // generic scripts would be both blind and unsound here.
                let report = oracle.differential_with(&case.program, &case.probes);
                matrix.absorb(&report);
                records.push(OracleRecord { path: format!("guarded:seed={seed}:{i}"), report });
            }
        } else {
            for (i, program) in workload::executable_corpus(seed, count).iter().enumerate() {
                let report = oracle.differential_with(program, &scripts);
                matrix.absorb(&report);
                records.push(OracleRecord { path: format!("corpus:seed={seed}:{i}"), report });
            }
        }
    }

    if json {
        print!("{}", render_oracle_json(&records, &matrix));
    } else {
        for record in records.iter().filter(|r| !r.report.agrees()) {
            for v in &record.report.verdicts {
                println!(
                    "xcheck: FALSE NEGATIVE {}: {}#{} expected {} (events: {})",
                    record.path,
                    v.site.function,
                    v.site.line,
                    v.kind.name(),
                    v.events.join(", "),
                );
            }
        }
        println!("{matrix}");
    }

    let (_, fp, _) = matrix.totals();
    let fp_over_budget = max_fp.is_some_and(|budget| {
        if fp > budget {
            eprintln!("xcheck: {fp} false positives exceed the --max-fp {budget} budget");
        }
        fp > budget
    });
    if had_errors {
        ExitCode::from(2)
    } else if matrix.false_negatives() > 0 || fp_over_budget {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
