//! `xcheck` — the analyzer/executor differential over files and seeded
//! corpora.
//!
//! ```text
//! usage: xcheck [--seed N] [--count N] [--json] [PATH...]
//!
//!   PATH may be a .pnx file or a directory (scanned recursively for
//!   *.pnx). When no PATH is given, or in addition to the given paths,
//!   xcheck runs the differential over the seeded executable corpus:
//!
//!   --seed N     corpus seed (default 1)
//!   --count N    corpus size (default 200; 0 disables the corpus pass)
//!   --json       emit the pncheck-oracle/1 JSON envelope instead of
//!                the text matrix
//! ```
//!
//! Every program is analyzed statically and executed concretely under
//! the seeded attacker scripts from `workload::attack_inputs`; the
//! per-site verdicts aggregate into one TP/FP/FN matrix. Exit status:
//! 0 when analyzer and machine agree (zero false negatives), 1 on any
//! false negative, 2 on usage or read/parse errors.

use std::process::ExitCode;

use pnew_corpus::workload;
use pnew_detector::cliopts;
use pnew_detector::emit::{render_oracle_json, OracleRecord};
use pnew_detector::oracle::{Matrix, Oracle};
use pnew_detector::parse_program_recovering;

const USAGE: &str = "usage: xcheck [--seed N] [--count N] [--json] [PATH...]";

fn main() -> ExitCode {
    let mut seed = 1u64;
    let mut count = 200usize;
    let mut json = false;
    let mut inputs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("xcheck: --seed needs an integer");
                    return ExitCode::from(2);
                }
            },
            "--count" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => count = v,
                None => {
                    eprintln!("xcheck: --count needs an integer");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("xcheck: unknown flag {other}\n{USAGE}");
                return ExitCode::from(2);
            }
            _ => inputs.push(arg),
        }
    }

    let mut had_errors = false;
    let (paths, expand_errors) = cliopts::expand_inputs(&inputs);
    for e in expand_errors {
        eprintln!("xcheck: {e}");
        had_errors = true;
    }

    let oracle = Oracle::new();
    let scripts: Vec<Vec<i64>> =
        Oracle::default_inputs().into_iter().chain(workload::attack_inputs(seed, 4)).collect();
    let mut matrix = Matrix::new();
    let mut records: Vec<OracleRecord> = Vec::new();

    for path in &paths {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xcheck: {path}: {e}");
                had_errors = true;
                continue;
            }
        };
        let program = match parse_program_recovering(&source) {
            Ok(p) => p,
            Err(errors) => {
                for e in &errors {
                    eprintln!("xcheck: {path}: {e}");
                }
                had_errors = true;
                continue;
            }
        };
        let report = oracle.differential_with(&program, &scripts);
        matrix.absorb(&report);
        records.push(OracleRecord { path: path.clone(), report });
    }

    if count > 0 {
        for (i, program) in workload::executable_corpus(seed, count).iter().enumerate() {
            let report = oracle.differential_with(program, &scripts);
            matrix.absorb(&report);
            records.push(OracleRecord { path: format!("corpus:seed={seed}:{i}"), report });
        }
    }

    if json {
        print!("{}", render_oracle_json(&records, &matrix));
    } else {
        for record in records.iter().filter(|r| !r.report.agrees()) {
            for v in &record.report.verdicts {
                println!(
                    "xcheck: FALSE NEGATIVE {}: {}#{} expected {} (events: {})",
                    record.path,
                    v.site.function,
                    v.site.line,
                    v.kind.name(),
                    v.events.join(", "),
                );
            }
        }
        println!("{matrix}");
    }

    if had_errors {
        ExitCode::from(2)
    } else if matrix.false_negatives() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
